"""The :class:`Database` facade: parse, plan and execute statements.

This is the component the mining architecture calls "the SQL server".
It owns the catalog, a host-variable store (so that ``SELECT .. INTO
:totg`` in one query of a translation program is visible to later
queries, exactly as the paper's Q1/Q3 pair requires), and a statement
counter used by the benchmarks.

Two caches make repeated execution cheap — the paper's Preprocessor
replays the same Q0..Q11 programs for every MINE RULE execution, so
the engine must not re-pay lexing, parsing and planning each time:

* a **statement cache** maps SQL text to its parsed AST;
* a **plan cache** maps a parsed SELECT (by identity) to its physical
  plan, keyed on the catalog version — any DDL bumps the version and
  thereby evicts every cached plan.  Plans that snapshot data at plan
  time (views, derived tables) are never cached.

Both are observable through :attr:`Database.cache_stats`;
:meth:`Database.prepare` exposes the prepared-statement handle used by
the Preprocessor and the DB-API cursor.

Concurrency (the jobs layer runs statements from worker threads):

* every statement executes under the database's :class:`RWLock` —
  plain SELECTs on the shared side, anything that mutates state
  (DML, DDL, ``SELECT .. INTO``) on the exclusive side;
* the statement and plan caches (and their counters) are guarded by
  one cache lock, so concurrent ``prepare()``/``execute()`` calls
  neither corrupt the LRU order nor lose counter increments;
* the current statement's host-variable bindings are **thread-local**
  — two threads scanning through one cached plan each see their own
  parameters.
"""

from __future__ import annotations

import functools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import faults
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, Index, View
from repro.sqlengine.compiler import BoundExpr, ExpressionCompiler
from repro.sqlengine.errors import ExecutionError
from repro.sqlengine.evaluator import Env, Evaluator, Frame, compare
from repro.sqlengine.locks import RWLock
from repro.sqlengine.operators import Filter, GroupAggregate, Operator
from repro.sqlengine.parser import parse_sql, split_statements
from repro.sqlengine.planner import SelectPlanner, conjoin
from repro.sqlengine.result import Result
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType, coerce as coerce_value
from repro.sqlengine.vector import build_vector_plan
from repro.sqlengine import columnar

Row = Tuple[Any, ...]


@dataclass
class CacheStats:
    """Statement/plan cache counters (observability for the benches and
    :class:`~repro.kernel.preprocessor.PreprocessStats`)."""

    statement_hits: int = 0
    statement_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: cached plans discarded because the catalog version moved on
    plan_invalidations: int = 0

    def snapshot(self) -> "CacheStats":
        return _dc_replace(self)


class _EngineInstruments:
    """Pre-resolved metric handles for the statement hot path.

    Built once when a metrics registry is attached, so executing a
    statement costs one ``is not None`` check plus the observes — no
    registry lookups per statement.
    """

    __slots__ = (
        "statement_seconds",
        "statements_total",
        "rows_returned",
        "rows_scanned",
        "cache_events",
    )

    def __init__(self, metrics: MetricsRegistry):
        self.statement_seconds = metrics.histogram(
            "repro_sql_statement_seconds",
            "SQL statement execution latency by statement kind",
            ("kind",),
        )
        self.statements_total = metrics.counter(
            "repro_sql_statements_total",
            "SQL statements executed by statement kind",
            ("kind",),
        )
        self.rows_returned = metrics.counter(
            "repro_sql_rows_returned_total",
            "Rows returned by SQL statements",
        )
        self.rows_scanned = metrics.counter(
            "repro_sql_rows_scanned_total",
            "Source rows scanned by SELECT pipelines",
        )
        self.cache_events = metrics.counter(
            "repro_sql_cache_events_total",
            "Statement/plan cache events",
            ("cache", "outcome"),
        )


def _counted_envs(envs: Iterable[Env], counter: Any) -> "Iterable[Env]":
    """Wrap a scan's env stream so the rows-scanned counter advances by
    however many rows the pipeline actually pulled (early-exit safe)."""
    scanned = 0
    try:
        for env in envs:
            scanned += 1
            yield env
    finally:
        if scanned:
            counter.inc(scanned)


class PreparedStatement:
    """A parsed statement handle bound to one :class:`Database`.

    Parsing happened at :meth:`Database.prepare` time; repeated
    :meth:`execute` calls skip the lexer/parser entirely and, for
    SELECTs, reuse the cached physical plan while the catalog version
    is unchanged.
    """

    __slots__ = ("_db", "sql", "statement")

    def __init__(self, database: "Database", sql: str, statement: ast.Statement):
        self._db = database
        self.sql = sql
        self.statement = statement

    def execute(self, params: Optional[Dict[str, Any]] = None) -> Result:
        return self._db.execute_ast(self.statement, params, sql=self.sql)

    def query(self, params: Optional[Dict[str, Any]] = None) -> List[Row]:
        return self.execute(params).rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PreparedStatement({self.sql!r})"


class _Projector:
    """Plan-time compiled select list: output names plus one closure
    (or star slot list) per item."""

    __slots__ = ("columns", "_parts", "_fns", "compiled")

    def __init__(
        self, select: ast.Select, frame: Frame, compiler: ExpressionCompiler
    ):
        columns: List[str] = []
        parts: List[Tuple[bool, Any]] = []
        compiled = True
        has_star = False
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                has_star = True
                slots: List[Tuple[int, int]] = []
                for src_idx, col_idx, name in frame.star_columns(
                    item.expr.qualifier
                ):
                    columns.append(name)
                    slots.append((src_idx, col_idx))
                parts.append((True, slots))
                continue
            columns.append(item.alias or _default_name(item.expr, idx))
            bound = compiler.bind(item.expr, frame)
            compiled = compiled and bound.compiled
            parts.append((False, bound.fn))
        self.columns = columns
        self._parts = parts
        #: fast path when the select list has no stars
        self._fns = None if has_star else [fn for _, fn in parts]
        self.compiled = compiled

    def project(self, env: Env) -> List[Any]:
        fns = self._fns
        if fns is not None:
            return [fn(env) for fn in fns]
        out: List[Any] = []
        for is_star, payload in self._parts:
            if is_star:
                rows = env.rows
                for src_idx, col_idx in payload:
                    out.append(rows[src_idx][col_idx])
            else:
                out.append(payload(env))
        return out


class _OrderSpec:
    """Plan-time ORDER BY keys: positional references index the output
    row directly; expressions are bound against the output frame (with
    the row env as parent scope for source columns)."""

    __slots__ = ("_entries", "_out_frame", "_any_expr")

    def __init__(
        self,
        select: ast.Select,
        columns: Sequence[str],
        compiler: ExpressionCompiler,
    ):
        self._out_frame = Frame.single(None, columns)
        entries: List[Tuple[bool, Any]] = []
        any_expr = False
        for order_item in select.order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                entries.append((True, expr.value))
            else:
                entries.append((False, compiler.bind(expr, self._out_frame)))
                any_expr = True
        self._entries = entries
        self._any_expr = any_expr

    def keys(self, row: Row, env: Optional[Env]) -> Tuple[Any, ...]:
        order_env = (
            Env(self._out_frame, (row,), parent=env) if self._any_expr else None
        )
        keys: List[Any] = []
        for positional, payload in self._entries:
            if positional:
                position = payload - 1
                if not 0 <= position < len(row):
                    raise ExecutionError(
                        f"ORDER BY position {payload} out of range"
                    )
                keys.append(row[position])
            else:
                keys.append(payload.fn(order_env))
        return tuple(keys)


class _SelectPlan:
    """Everything static about one SELECT execution: the operator tree,
    bound predicates, the projector and the ORDER BY spec.  Built once
    per (statement, catalog version); rows flow through it on every
    execution."""

    __slots__ = (
        "select",
        "evaluator",
        "compiler",
        "root",
        "leftovers",
        "source",
        "predicate",
        "having",
        "has_aggregates",
        "projector",
        "order_spec",
        "cacheable",
        "catalog_version",
        "has_columnar_scan",
        "vector",
    )

    select: ast.Select
    evaluator: Evaluator
    compiler: ExpressionCompiler
    root: Optional[Operator]
    leftovers: List[ast.Expression]
    source: Optional[Operator]
    predicate: Optional[BoundExpr]
    having: Optional[BoundExpr]
    has_aggregates: bool
    projector: Optional[_Projector]
    order_spec: Optional[_OrderSpec]
    cacheable: bool
    catalog_version: int
    #: at least one scanned base table is columnar (vector-path gate)
    has_columnar_scan: bool
    #: lazily built vector mirror: None = not tried yet, False = no
    #: exact vector lowering exists (row path forever), else VectorPlan
    vector: Any


class Database:
    """An in-memory SQL database instance."""

    def __init__(self, options: Optional["EngineOptions"] = None) -> None:
        from repro.sqlengine.options import EngineOptions

        self.catalog = Catalog()
        self.options = options if options is not None else EngineOptions()
        #: per-table storage overrides (lower-cased name -> "row" or
        #: "columnar") consulted before ``options.storage`` whenever a
        #: table is created; the preprocessor registers its encoded
        #: working tables here
        self.storage_hints: Dict[str, str] = {}
        #: host variables assigned by ``SELECT .. INTO :name``
        self.variables: Dict[str, Any] = {}
        #: number of statements executed (observability for benches)
        self.statements_executed = 0
        #: statement/plan cache hit-miss counters
        self.cache_stats = CacheStats()
        #: observability sink; the shared no-op tracer by default, so
        #: the un-traced hot path pays one attribute check per statement
        self.tracer = NULL_TRACER
        #: slow-query log (``repro.obs.slowlog.SlowQueryLog``) or None
        self.slowlog = None
        self._metrics = NULL_REGISTRY
        #: pre-resolved instrument handles; None while metrics are off,
        #: so the hot path guard is one ``is not None`` check
        self._im: Optional[_EngineInstruments] = None
        #: per-operator instrumentation for the statement in flight
        #: (installed by :func:`repro.sqlengine.explain.analyze_statement`)
        self._analyze = None
        #: reader/writer statement guard: SELECT scans share it, DML/
        #: DDL/SELECT INTO hold it exclusively (jobs-layer concurrency)
        self.rwlock = RWLock()
        #: guards the statement/plan caches, their LRU order, the
        #: cache_stats counters and statements_executed
        self._cache_lock = threading.RLock()
        #: host variables of the statement currently executing — one
        #: binding per thread, so concurrent readers sharing a cached
        #: plan cannot clobber each other's parameters
        self._local = threading.local()
        self._statement_cache: "OrderedDict[str, ast.Statement]" = OrderedDict()
        self._plan_cache: "OrderedDict[int, _SelectPlan]" = OrderedDict()

    @property
    def _params(self) -> Dict[str, Any]:
        return getattr(self._local, "params", {})

    @_params.setter
    def _params(self, value: Dict[str, Any]) -> None:
        self._local.params = value

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @metrics.setter
    def metrics(self, registry: MetricsRegistry) -> None:
        self._metrics = registry
        self._im = (
            _EngineInstruments(registry) if registry.enabled else None
        )

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        """Parse (through the statement cache) and execute one
        statement."""
        statement = self._parse_statement(sql)
        return self.execute_ast(statement, params, sql=sql)

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Row]:
        """Execute and return the raw row list."""
        return self.execute(sql, params).rows

    def prepare(self, sql: str) -> PreparedStatement:
        """Parse one statement once and return a reusable handle.

        Repeated executions of the handle skip lexing/parsing; SELECT
        plans are additionally reused through the plan cache until a
        DDL statement bumps the catalog version.
        """
        return PreparedStatement(self, sql, self._parse_statement(sql))

    def execute_script(
        self, script: str, params: Optional[Dict[str, Any]] = None
    ) -> List[Result]:
        """Execute a semicolon-separated script, returning one result
        per statement."""
        return [self.execute(chunk, params) for chunk in split_statements(script)]

    def execute_ast(
        self,
        statement: ast.Statement,
        params: Optional[Dict[str, Any]] = None,
        sql: Optional[str] = None,
    ) -> Result:
        """Execute an already-parsed statement.

        *sql* is the original text, used only as slow-query-log detail
        — callers executing a bare AST may omit it.
        """
        faults.check("engine.execute")
        with self._cache_lock:
            self.statements_executed += 1
        tracer = self.tracer
        im = self._im
        if im is None and self.slowlog is None:
            if tracer.enabled:
                with tracer.span(
                    f"engine.{type(statement).__name__}", category="engine"
                ):
                    return self._dispatch_statement(statement, params)
            return self._dispatch_statement(statement, params)
        return self._execute_instrumented(statement, tracer, im, sql, params)

    def _execute_instrumented(
        self,
        statement: ast.Statement,
        tracer: Any,
        im: Optional[_EngineInstruments],
        sql: Optional[str],
        params: Optional[Dict[str, Any]] = None,
    ) -> Result:
        """The metered statement path: latency histogram, per-kind
        totals, rows returned, slow-query log."""
        kind = type(statement).__name__
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span(f"engine.{kind}", category="engine"):
                result = self._dispatch_statement(statement, params)
        else:
            result = self._dispatch_statement(statement, params)
        elapsed = time.perf_counter() - started
        if im is not None:
            im.statement_seconds.observe(elapsed, kind=kind)
            im.statements_total.inc(kind=kind)
            if result.rows:
                im.rows_returned.inc(len(result.rows))
        slowlog = self.slowlog
        if slowlog is not None:
            slowlog.record(f"sql.{kind}", elapsed, detail=sql or "")
        return result

    def _statement_guard(self, statement: ast.Statement):
        """The lock side a statement runs under: plain SELECTs share
        the read side; everything that mutates engine state (DML, DDL,
        ``SELECT .. INTO`` host-variable writes) is exclusive."""
        if isinstance(statement, ast.Select) and not statement.into_vars:
            return self.rwlock.read_locked()
        return self.rwlock.write_locked()

    def _dispatch_statement(
        self,
        statement: ast.Statement,
        params: Optional[Dict[str, Any]] = None,
    ) -> Result:
        with self._statement_guard(statement):
            # Bind host variables inside the guard: a concurrent
            # SELECT INTO may be mutating self.variables until the
            # write lock drains.
            merged = dict(self.variables)
            if params:
                merged.update(params)
            self._params = merged
            return self._dispatch_unlocked(statement)

    def _dispatch_unlocked(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateTableAsSelect):
            return self._execute_ctas(statement)
        if isinstance(statement, ast.CreateView):
            self.catalog.create_view(
                View(statement.name, statement.select), statement.or_replace
            )
            return Result()
        if isinstance(statement, ast.CreateSequence):
            self.catalog.create_sequence(statement.name, statement.start)
            return Result()
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(
                Index(statement.name, statement.table, statement.columns)
            )
            return Result()
        if isinstance(statement, ast.DropObject):
            return self._execute_drop(statement)
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        raise ExecutionError(f"unsupported statement: {statement!r}")

    def explain(self, sql: str, params: Optional[Dict[str, Any]] = None) -> str:
        """Render the physical plan of a SELECT statement as text."""
        from repro.sqlengine.explain import explain

        return explain(self, sql, params)

    def analyze(self, sql: str, params: Optional[Dict[str, Any]] = None):
        """Execute *sql* once with per-operator instrumentation.

        Returns the full :class:`~repro.sqlengine.explain.AnalyzeResult`
        (annotated plan text, structured node stats and the statement's
        real result) — side-effecting statements run exactly once."""
        from repro.sqlengine.explain import analyze_statement

        return analyze_statement(self, sql, params)

    def explain_analyze(
        self, sql: str, params: Optional[Dict[str, Any]] = None
    ) -> str:
        """EXPLAIN ANALYZE: the annotated plan text of one real
        execution (actual rows, loops and wall time per plan node)."""
        return self.analyze(sql, params).text

    def clear_caches(self) -> None:
        """Drop every cached parse and plan (counters are kept)."""
        with self._cache_lock:
            self._statement_cache.clear()
            self._plan_cache.clear()

    # -- convenience -----------------------------------------------------

    def table(self, name: str) -> Table:
        """Direct access to a base table (used by the core operator to
        bulk-read encoded tables without SQL overhead)."""
        return self.catalog.get_table(name)

    def create_table_from_rows(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
        types: Optional[Sequence[Optional[SqlType]]] = None,
        replace: bool = False,
    ) -> Table:
        """Bulk-create a table from Python data (loader path)."""
        if replace:
            self.catalog.drop_table(name, if_exists=True)
        table = self._make_table(name, columns, types)
        table.insert_many(rows)
        self.catalog.create_table(table)
        return table

    def _make_table(
        self,
        name: str,
        columns: Sequence[str],
        types: Optional[Sequence[Optional[SqlType]]] = None,
    ) -> Table:
        """Build a table in the storage layout the hints/options pick."""
        kind = self.storage_hints.get(name.lower(), self.options.storage)
        return columnar.make_table(kind, name, columns, types)

    # ------------------------------------------------------------------
    # statement and plan caches
    # ------------------------------------------------------------------

    def _parse_statement(self, sql: str) -> ast.Statement:
        im = self._im
        with self._cache_lock:
            cache = self._statement_cache
            statement = cache.get(sql)
            if statement is not None:
                self.cache_stats.statement_hits += 1
                if im is not None:
                    im.cache_events.inc(cache="statement", outcome="hit")
                cache.move_to_end(sql)
                return statement
            self.cache_stats.statement_misses += 1
            if im is not None:
                im.cache_events.inc(cache="statement", outcome="miss")
        # Parse outside the lock (pure function of the text); first
        # writer wins so every thread keeps getting the same AST object
        # for the same SQL text (the plan cache keys on identity).
        statement = parse_sql(sql)
        with self._cache_lock:
            cache = self._statement_cache
            existing = cache.get(sql)
            if existing is not None:
                cache.move_to_end(sql)
                return existing
            cache[sql] = statement
            while len(cache) > self.options.statement_cache_size:
                cache.popitem(last=False)
        return statement

    def _select_plan(self, select: ast.Select) -> _SelectPlan:
        """Fetch or build the physical plan for *select*.

        The cache key is the parsed node's identity: the statement
        cache hands back the same AST object for the same SQL text, so
        re-executions (and every subquery nested in a cached statement)
        hit here without any hashing of the tree.  An entry holds a
        strong reference to its Select, which pins the id.
        """
        key = id(select)
        im = self._im
        with self._cache_lock:
            entry = self._plan_cache.get(key)
            if entry is not None and entry.select is select:
                if entry.catalog_version == self.catalog.version:
                    self.cache_stats.plan_hits += 1
                    if im is not None:
                        im.cache_events.inc(cache="plan", outcome="hit")
                    self._plan_cache.move_to_end(key)
                    return entry
                self.cache_stats.plan_invalidations += 1
                if im is not None:
                    im.cache_events.inc(cache="plan", outcome="invalidation")
                del self._plan_cache[key]
            self.cache_stats.plan_misses += 1
            if im is not None:
                im.cache_events.inc(cache="plan", outcome="miss")
            plan = self._build_select_plan(select)
            if self.options.plan_cache and plan.cacheable:
                self._plan_cache[key] = plan
                while len(self._plan_cache) > self.options.plan_cache_size:
                    self._plan_cache.popitem(last=False)
            return plan

    def _build_select_plan(self, select: ast.Select) -> _SelectPlan:
        evaluator = Evaluator(self, self._params)
        planner = SelectPlanner(self, evaluator)
        root, leftovers = planner.plan_from(select)
        compiler = planner.compiler

        plan = _SelectPlan()
        plan.select = select
        plan.evaluator = evaluator
        plan.compiler = compiler
        plan.root = root
        plan.leftovers = leftovers
        plan.cacheable = planner.cacheable
        plan.catalog_version = self.catalog.version
        plan.has_columnar_scan = planner.columnar_scan
        plan.vector = None
        plan.predicate = None
        plan.having = None
        plan.source = None
        plan.projector = None
        plan.order_spec = None

        has_aggregates = bool(select.group_by) or any(
            evaluator.contains_aggregate(item.expr)
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        )
        if select.having is not None and not select.group_by:
            has_aggregates = True
        plan.has_aggregates = has_aggregates

        if root is None:
            # SELECT without FROM: evaluated per execution against the
            # (possibly correlated) outer environment; nothing worth
            # compiling against a frame that is unknown at plan time.
            return plan

        predicate = conjoin(leftovers)
        if has_aggregates:
            # Leftover WHERE conjuncts must filter *before* grouping.
            child: Operator = root
            if predicate is not None:
                child = Filter(root, predicate, evaluator, compiler=compiler)
            plan.source = GroupAggregate(
                child,
                list(select.group_by),
                evaluator,
                scalar=not select.group_by,
                compiler=compiler,
            )
            if select.having is not None:
                plan.having = compiler.bind(select.having, root.frame)
        else:
            plan.source = root
            if predicate is not None:
                plan.predicate = compiler.bind(predicate, root.frame)

        plan.projector = _Projector(select, root.frame, compiler)
        if select.order_by:
            plan.order_spec = _OrderSpec(select, plan.projector.columns, compiler)
        return plan

    # ------------------------------------------------------------------
    # SELECT execution
    # ------------------------------------------------------------------

    def _execute_select(self, select: ast.Select) -> Result:
        columns, rows = self._run_select_raw(select)
        if select.into_vars:
            if len(rows) != 1:
                raise ExecutionError(
                    f"SELECT INTO expects exactly one row, got {len(rows)}"
                )
            if len(select.into_vars) != len(rows[0]):
                raise ExecutionError(
                    "SELECT INTO arity mismatch: "
                    f"{len(select.into_vars)} variables, {len(rows[0])} columns"
                )
            for var, value in zip(select.into_vars, rows[0]):
                self.variables[var] = value
        return Result(columns, rows)

    def _run_select_raw(
        self,
        select: ast.Select,
        outer_env: Optional[Env] = None,
        limit_one: bool = False,
    ) -> Tuple[List[str], List[Row]]:
        columns, rows = self._run_select_core(select, outer_env, limit_one)
        for op, all_flag, rhs in select.set_ops:
            _, rhs_rows = self._run_select_core(rhs, outer_env, False)
            rows = _apply_set_op(op, all_flag, rows, rhs_rows)
        return columns, rows

    def _run_subquery(
        self,
        select: ast.Select,
        params: Dict[str, Any],
        outer_env: Optional[Env],
        limit_one: bool = False,
    ) -> List[Row]:
        _, rows = self._run_select_raw(select, outer_env, limit_one)
        return rows

    def _run_select_core(
        self,
        select: ast.Select,
        outer_env: Optional[Env],
        limit_one: bool,
    ) -> Tuple[List[str], List[Row]]:
        plan = self._select_plan(select)
        if self._analyze is not None:
            self._analyze.attach(plan)
        evaluator = plan.evaluator
        # Host variables resolve through the database's thread-local
        # params at call time (Evaluator._params is a property), so a
        # cached plan sees the parameters of *this* execution without
        # any rebinding — even when two threads share the plan.

        if plan.root is None:
            # SELECT without FROM: one conceptual row.
            env = outer_env
            if plan.leftovers and not all(
                evaluator.eval_predicate(c, env) for c in plan.leftovers
            ):
                return self._output_names(select, None, evaluator), []
            columns, row, _ = self._project_row(select, env, evaluator, None)
            return columns, [tuple(row)]

        if (
            plan.has_columnar_scan
            and outer_env is None
            and not limit_one
            and self.options.vectorize
        ):
            vector = plan.vector
            if vector is None:
                try:
                    vector = build_vector_plan(plan, self)
                except Exception:
                    # defensive: an unexpected build failure must never
                    # break a statement the row path can run
                    vector = False
                plan.vector = vector
            if vector is not False:
                columns, rows = vector.execute(self)
                return columns, self._apply_limit(select, rows, evaluator)

        source = plan.source
        projector = plan.projector
        order_spec = plan.order_spec
        predicate = plan.predicate.fn if plan.predicate is not None else None
        having = plan.having.fn if plan.having is not None else None

        out_rows: List[Row] = []
        order_keys: List[Tuple[Any, ...]] = []
        seen: Optional[Dict[Row, None]] = {} if select.distinct else None
        can_stop_early = (
            limit_one and not select.order_by and select.limit is None
        )

        envs = source.envs(outer_env)
        im = self._im
        if im is not None:
            envs = _counted_envs(envs, im.rows_scanned)

        for env in envs:
            if predicate is not None and predicate(env) is not True:
                continue
            if having is not None and having(env) is not True:
                continue
            row_t = tuple(projector.project(env))
            if seen is not None:
                if row_t in seen:
                    continue
                seen[row_t] = None
            out_rows.append(row_t)
            if order_spec is not None:
                order_keys.append(order_spec.keys(row_t, env))
            if can_stop_early:
                break

        if select.order_by:
            out_rows = _sort_rows(out_rows, order_keys, select.order_by)

        out_rows = self._apply_limit(select, out_rows, evaluator)
        return projector.columns, out_rows

    def _project_row(
        self,
        select: ast.Select,
        env: Optional[Env],
        evaluator: Evaluator,
        outer_env: Optional[Env],
    ) -> Tuple[List[str], List[Any], Tuple[Any, ...]]:
        """Interpreted projection: used only for SELECT without FROM,
        where the row environment (the enclosing scope) has no plan-time
        frame to compile against."""
        columns: List[str] = []
        values: List[Any] = []
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if env is None:
                    raise ExecutionError("'*' requires a FROM clause")
                for src_idx, col_idx, name in env.frame.star_columns(
                    item.expr.qualifier
                ):
                    columns.append(name)
                    values.append(env.rows[src_idx][col_idx])
                continue
            columns.append(item.alias or _default_name(item.expr, idx))
            values.append(evaluator.eval(item.expr, env))

        order_keys: Tuple[Any, ...] = ()
        if select.order_by:
            out_frame = Frame.single(None, columns)
            order_env = Env(out_frame, (tuple(values),), parent=env)
            keys = []
            for order_item in select.order_by:
                expr = order_item.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                    if not 0 <= position < len(values):
                        raise ExecutionError(
                            f"ORDER BY position {expr.value} out of range"
                        )
                    keys.append(values[position])
                else:
                    keys.append(evaluator.eval(expr, order_env))
            order_keys = tuple(keys)
        return columns, values, order_keys

    def _output_names(
        self,
        select: ast.Select,
        root: Optional[Operator],
        evaluator: Evaluator,
    ) -> List[str]:
        """Output column names for an empty result."""
        columns: List[str] = []
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if root is not None:
                    for _, _, name in root.frame.star_columns(item.expr.qualifier):
                        columns.append(name)
                continue
            columns.append(item.alias or _default_name(item.expr, idx))
        return columns

    def _apply_limit(
        self, select: ast.Select, rows: List[Row], evaluator: Evaluator
    ) -> List[Row]:
        offset = 0
        if select.offset is not None:
            offset = int(evaluator.eval(select.offset, None))
        if offset:
            rows = rows[offset:]
        if select.limit is not None:
            limit = int(evaluator.eval(select.limit, None))
            rows = rows[:limit]
        return rows

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        columns = [c.name for c in statement.columns]
        types = [c.type for c in statement.columns]
        self.catalog.create_table(self._make_table(statement.name, columns, types))
        return Result()

    def _execute_ctas(self, statement: ast.CreateTableAsSelect) -> Result:
        columns, rows = self._run_select_raw(statement.select)
        table = self._make_table(statement.name, columns)
        table.insert_many(rows)
        self.catalog.create_table(table)
        return Result(rowcount=len(rows))

    def _execute_drop(self, statement: ast.DropObject) -> Result:
        catalog = self.catalog
        dispatch = {
            "TABLE": catalog.drop_table,
            "VIEW": catalog.drop_view,
            "SEQUENCE": catalog.drop_sequence,
            "INDEX": catalog.drop_index,
        }
        dispatch[statement.kind](statement.name, statement.if_exists)
        return Result()

    def _execute_insert_values(self, statement: ast.InsertValues) -> Result:
        table = self.catalog.get_table(statement.table)
        evaluator = Evaluator(self, self._params)
        count = 0
        for row_exprs in statement.rows:
            values = [evaluator.eval(e, None) for e in row_exprs]
            table.insert(self._align_insert(table, statement.columns, values))
            count += 1
        return Result(rowcount=count)

    def _execute_insert_select(self, statement: ast.InsertSelect) -> Result:
        columns, rows = self._run_select_raw(statement.select)
        if not self.catalog.has_table(statement.table):
            # Convenience extension: auto-create the target from the
            # SELECT output schema (the paper's translation programs
            # INSERT into fresh working tables).
            target_columns = list(statement.columns) if statement.columns else columns
            table = self._make_table(statement.table, target_columns)
            self.catalog.create_table(table)
        else:
            table = self.catalog.get_table(statement.table)
        if statement.columns:
            align = self._align_insert
            count = table.insert_many(
                align(table, statement.columns, list(row)) for row in rows
            )
        else:
            count = table.insert_many(rows)
        return Result(rowcount=count)

    @staticmethod
    def _align_insert(
        table: Table, columns: Sequence[str], values: List[Any]
    ) -> List[Any]:
        if not columns:
            return values
        if len(columns) != len(values):
            raise ExecutionError(
                f"INSERT column list has {len(columns)} names "
                f"but {len(values)} values"
            )
        full = [None] * table.arity
        for name, value in zip(columns, values):
            full[table.column_index(name)] = value
        return full

    def _execute_delete(self, statement: ast.Delete) -> Result:
        table = self.catalog.get_table(statement.table)
        if statement.where is None:
            count = len(table.rows)
            table.truncate()
            return Result(rowcount=count)
        evaluator = Evaluator(self, self._params)
        frame = Frame.single(statement.table, table.columns)
        kept: List[Row] = []
        removed = 0
        for row in table.rows:
            env = Env(frame, (row,))
            if evaluator.eval_predicate(statement.where, env):
                removed += 1
            else:
                kept.append(row)
        table.replace_rows(kept)
        return Result(rowcount=removed)

    def _execute_update(self, statement: ast.Update) -> Result:
        table = self.catalog.get_table(statement.table)
        evaluator = Evaluator(self, self._params)
        frame = Frame.single(statement.table, table.columns)
        indexes = [
            (table.column_index(name), expr) for name, expr in statement.assignments
        ]
        updated = 0
        new_rows: List[Row] = []
        for row in table.rows:
            env = Env(frame, (row,))
            if statement.where is None or evaluator.eval_predicate(
                statement.where, env
            ):
                mutable = list(row)
                for col_idx, expr in indexes:
                    value = evaluator.eval(expr, env)
                    declared = table.types[col_idx]
                    if declared is not None:
                        value = coerce_value(value, declared)
                    mutable[col_idx] = value
                new_rows.append(tuple(mutable))
                updated += 1
            else:
                new_rows.append(row)
        table.replace_rows(new_rows)
        return Result(rowcount=updated)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _default_name(expr: ast.Expression, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    if isinstance(expr, ast.SequenceNextval):
        return "nextval"
    return f"col{index + 1}"


def _apply_set_op(
    op: str, all_flag: bool, left: List[Row], right: List[Row]
) -> List[Row]:
    if op == "UNION":
        combined = left + right
        if all_flag:
            return combined
        return _dedupe(combined)
    if op == "INTERSECT":
        right_counts = _count_rows(right)
        out: List[Row] = []
        for row in left:
            if right_counts.get(row, 0) > 0:
                out.append(row)
                if all_flag:
                    right_counts[row] -= 1
        return out if all_flag else _dedupe(out)
    if op == "EXCEPT":
        right_counts = _count_rows(right)
        out = []
        for row in left:
            if right_counts.get(row, 0) > 0:
                if all_flag:
                    right_counts[row] -= 1
                continue
            out.append(row)
        return out if all_flag else _dedupe(out)
    raise ExecutionError(f"unknown set operation {op!r}")


def _dedupe(rows: List[Row]) -> List[Row]:
    seen: Dict[Row, None] = {}
    for row in rows:
        if row not in seen:
            seen[row] = None
    return list(seen.keys())


def _count_rows(rows: List[Row]) -> Dict[Row, int]:
    counts: Dict[Row, int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


def compare_order_keys(
    akeys: Tuple[Any, ...],
    bkeys: Tuple[Any, ...],
    order_by: Sequence[ast.OrderItem],
) -> int:
    """Three-way ORDER BY key comparison (shared with the external
    merge sort in :mod:`repro.sqlengine.spill`)."""
    for position, item in enumerate(order_by):
        left = akeys[position]
        right = bkeys[position]
        if left is None and right is None:
            continue
        # NULL compares as the largest value: last in ASC, first in
        # DESC (Oracle's default NULLS LAST / NULLS FIRST).
        if left is None:
            return 1 if item.ascending else -1
        if right is None:
            return -1 if item.ascending else 1
        if compare("<", left, right) is True:
            result = -1
        elif compare(">", left, right) is True:
            result = 1
        else:
            continue
        return result if item.ascending else -result
    return 0


def _sort_rows(
    rows: List[Row],
    keys: List[Tuple[Any, ...]],
    order_by: Sequence[ast.OrderItem],
) -> List[Row]:
    def cmp(a: Tuple[int, Tuple[Any, ...]], b: Tuple[int, Tuple[Any, ...]]) -> int:
        return compare_order_keys(keys[a[0]], keys[b[0]], order_by)

    indexed = list(enumerate(rows))
    indexed.sort(key=functools.cmp_to_key(cmp))
    return [row for _, row in indexed]
