"""The :class:`Database` facade: parse, plan and execute statements.

This is the component the mining architecture calls "the SQL server".
It owns the catalog, a host-variable store (so that ``SELECT .. INTO
:totg`` in one query of a translation program is visible to later
queries, exactly as the paper's Q1/Q3 pair requires), and a statement
counter used by the benchmarks.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.catalog import Catalog, Index, View
from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.evaluator import Env, Evaluator, Frame, compare
from repro.sqlengine.operators import GroupAggregate, Operator
from repro.sqlengine.parser import parse_sql, split_statements
from repro.sqlengine.planner import SelectPlanner, conjoin
from repro.sqlengine.result import Result
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType, coerce as coerce_value, infer_type

Row = Tuple[Any, ...]


class Database:
    """An in-memory SQL database instance."""

    def __init__(self, options: Optional["EngineOptions"] = None) -> None:
        from repro.sqlengine.options import EngineOptions

        self.catalog = Catalog()
        self.options = options if options is not None else EngineOptions()
        #: host variables assigned by ``SELECT .. INTO :name``
        self.variables: Dict[str, Any] = {}
        #: number of statements executed (observability for benches)
        self.statements_executed = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, sql: str, params: Optional[Dict[str, Any]] = None) -> Result:
        """Parse and execute one statement."""
        statement = parse_sql(sql)
        return self.execute_ast(statement, params)

    def query(self, sql: str, params: Optional[Dict[str, Any]] = None) -> List[Row]:
        """Execute and return the raw row list."""
        return self.execute(sql, params).rows

    def execute_script(
        self, script: str, params: Optional[Dict[str, Any]] = None
    ) -> List[Result]:
        """Execute a semicolon-separated script, returning one result
        per statement."""
        return [self.execute(chunk, params) for chunk in split_statements(script)]

    def execute_ast(
        self, statement: ast.Statement, params: Optional[Dict[str, Any]] = None
    ) -> Result:
        """Execute an already-parsed statement."""
        self.statements_executed += 1
        merged = dict(self.variables)
        if params:
            merged.update(params)
        self._params = merged
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateTableAsSelect):
            return self._execute_ctas(statement)
        if isinstance(statement, ast.CreateView):
            self.catalog.create_view(
                View(statement.name, statement.select), statement.or_replace
            )
            return Result()
        if isinstance(statement, ast.CreateSequence):
            self.catalog.create_sequence(statement.name, statement.start)
            return Result()
        if isinstance(statement, ast.CreateIndex):
            self.catalog.create_index(
                Index(statement.name, statement.table, statement.columns)
            )
            return Result()
        if isinstance(statement, ast.DropObject):
            return self._execute_drop(statement)
        if isinstance(statement, ast.InsertValues):
            return self._execute_insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._execute_insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        raise ExecutionError(f"unsupported statement: {statement!r}")

    def explain(self, sql: str, params: Optional[Dict[str, Any]] = None) -> str:
        """Render the physical plan of a SELECT statement as text."""
        from repro.sqlengine.explain import explain

        return explain(self, sql, params)

    # -- convenience -----------------------------------------------------

    def table(self, name: str) -> Table:
        """Direct access to a base table (used by the core operator to
        bulk-read encoded tables without SQL overhead)."""
        return self.catalog.get_table(name)

    def create_table_from_rows(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
        types: Optional[Sequence[Optional[SqlType]]] = None,
        replace: bool = False,
    ) -> Table:
        """Bulk-create a table from Python data (loader path)."""
        if replace:
            self.catalog.drop_table(name, if_exists=True)
        table = Table(name, columns, types)
        table.insert_many(rows)
        self.catalog.create_table(table)
        return table

    # ------------------------------------------------------------------
    # SELECT execution
    # ------------------------------------------------------------------

    def _execute_select(self, select: ast.Select) -> Result:
        columns, rows = self._run_select_raw(select)
        if select.into_vars:
            if len(rows) != 1:
                raise ExecutionError(
                    f"SELECT INTO expects exactly one row, got {len(rows)}"
                )
            if len(select.into_vars) != len(rows[0]):
                raise ExecutionError(
                    "SELECT INTO arity mismatch: "
                    f"{len(select.into_vars)} variables, {len(rows[0])} columns"
                )
            for var, value in zip(select.into_vars, rows[0]):
                self.variables[var] = value
        return Result(columns, rows)

    def _run_select_raw(
        self,
        select: ast.Select,
        outer_env: Optional[Env] = None,
        limit_one: bool = False,
    ) -> Tuple[List[str], List[Row]]:
        columns, rows = self._run_select_core(select, outer_env, limit_one)
        for op, all_flag, rhs in select.set_ops:
            _, rhs_rows = self._run_select_core(rhs, outer_env, False)
            rows = _apply_set_op(op, all_flag, rows, rhs_rows)
        return columns, rows

    def _run_subquery(
        self,
        select: ast.Select,
        params: Dict[str, Any],
        outer_env: Optional[Env],
        limit_one: bool = False,
    ) -> List[Row]:
        _, rows = self._run_select_raw(select, outer_env, limit_one)
        return rows

    def _run_select_core(
        self,
        select: ast.Select,
        outer_env: Optional[Env],
        limit_one: bool,
    ) -> Tuple[List[str], List[Row]]:
        evaluator = Evaluator(self, self._params)
        planner = SelectPlanner(self, evaluator)
        root, leftovers = planner.plan_from(select)

        if root is None:
            # SELECT without FROM: one conceptual row.
            env = outer_env
            if leftovers and not all(
                evaluator.eval_predicate(c, env) for c in leftovers
            ):
                return self._output_names(select, None, evaluator), []
            columns, row, _ = self._project_row(select, env, evaluator, None)
            return columns, [tuple(row)]

        predicate = conjoin(leftovers)

        has_aggregates = bool(select.group_by) or any(
            evaluator.contains_aggregate(item.expr)
            for item in select.items
            if not isinstance(item.expr, ast.Star)
        )
        if select.having is not None and not select.group_by:
            has_aggregates = True

        out_rows: List[Row] = []
        order_keys: List[Tuple[Any, ...]] = []
        columns: Optional[List[str]] = None
        seen: Optional[Dict[Row, None]] = {} if select.distinct else None

        if has_aggregates:
            source: Operator = GroupAggregate(
                root,
                list(select.group_by),
                evaluator,
                scalar=not select.group_by,
            )
        else:
            source = root

        for env in self._filtered_envs(source, root, predicate, outer_env, evaluator,
                                       prefilter=not has_aggregates):
            if has_aggregates and select.having is not None:
                if not evaluator.eval_predicate(select.having, env):
                    continue
            cols, row, okeys = self._project_row(
                select, env, evaluator, outer_env
            )
            if columns is None:
                columns = cols
            row_t = tuple(row)
            if seen is not None:
                if row_t in seen:
                    continue
                seen[row_t] = None
            out_rows.append(row_t)
            order_keys.append(okeys)
            if limit_one and not select.order_by and select.limit is None:
                break

        if columns is None:
            columns = self._output_names(select, root, evaluator)

        if select.order_by:
            out_rows = _sort_rows(out_rows, order_keys, select.order_by)

        out_rows = self._apply_limit(select, out_rows, evaluator)
        return columns, out_rows

    def _filtered_envs(
        self,
        source: Operator,
        root: Operator,
        predicate: Optional[ast.Expression],
        outer_env: Optional[Env],
        evaluator: Evaluator,
        prefilter: bool,
    ):
        """Iterate environments, applying leftover WHERE conjuncts.

        For aggregate queries the leftover predicate must run *before*
        grouping, so it is injected between root and the aggregate by
        filtering inside the GroupAggregate's child iteration; we handle
        that by wrapping the child at plan time instead — see below.
        """
        if predicate is None:
            yield from source.envs(outer_env)
            return
        if prefilter:
            for env in source.envs(outer_env):
                if evaluator.eval_predicate(predicate, env):
                    yield env
            return
        # Aggregate query with leftover WHERE: filter pre-aggregation.
        from repro.sqlengine.operators import Filter, GroupAggregate as GA

        assert isinstance(source, GA)
        filtered = Filter(source.child, predicate, evaluator)
        regrouped = GA(filtered, source.keys, evaluator, scalar=source.scalar)
        yield from regrouped.envs(outer_env)

    def _project_row(
        self,
        select: ast.Select,
        env: Optional[Env],
        evaluator: Evaluator,
        outer_env: Optional[Env],
    ) -> Tuple[List[str], List[Any], Tuple[Any, ...]]:
        columns: List[str] = []
        values: List[Any] = []
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if env is None:
                    raise ExecutionError("'*' requires a FROM clause")
                for src_idx, col_idx, name in env.frame.star_columns(
                    item.expr.qualifier
                ):
                    columns.append(name)
                    values.append(env.rows[src_idx][col_idx])
                continue
            columns.append(item.alias or _default_name(item.expr, idx))
            values.append(evaluator.eval(item.expr, env))

        order_keys: Tuple[Any, ...] = ()
        if select.order_by:
            out_frame = Frame.single(None, columns)
            order_env = Env(out_frame, (tuple(values),), parent=env)
            keys = []
            for order_item in select.order_by:
                expr = order_item.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    position = expr.value - 1
                    if not 0 <= position < len(values):
                        raise ExecutionError(
                            f"ORDER BY position {expr.value} out of range"
                        )
                    keys.append(values[position])
                else:
                    keys.append(evaluator.eval(expr, order_env))
            order_keys = tuple(keys)
        return columns, values, order_keys

    def _output_names(
        self,
        select: ast.Select,
        root: Optional[Operator],
        evaluator: Evaluator,
    ) -> List[str]:
        """Output column names for an empty result."""
        columns: List[str] = []
        for idx, item in enumerate(select.items):
            if isinstance(item.expr, ast.Star):
                if root is not None:
                    for _, _, name in root.frame.star_columns(item.expr.qualifier):
                        columns.append(name)
                continue
            columns.append(item.alias or _default_name(item.expr, idx))
        return columns

    def _apply_limit(
        self, select: ast.Select, rows: List[Row], evaluator: Evaluator
    ) -> List[Row]:
        offset = 0
        if select.offset is not None:
            offset = int(evaluator.eval(select.offset, None))
        if offset:
            rows = rows[offset:]
        if select.limit is not None:
            limit = int(evaluator.eval(select.limit, None))
            rows = rows[:limit]
        return rows

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTable) -> Result:
        columns = [c.name for c in statement.columns]
        types = [c.type for c in statement.columns]
        self.catalog.create_table(Table(statement.name, columns, types))
        return Result()

    def _execute_ctas(self, statement: ast.CreateTableAsSelect) -> Result:
        columns, rows = self._run_select_raw(statement.select)
        table = Table(statement.name, columns)
        table.insert_many(rows)
        self.catalog.create_table(table)
        return Result(rowcount=len(rows))

    def _execute_drop(self, statement: ast.DropObject) -> Result:
        catalog = self.catalog
        dispatch = {
            "TABLE": catalog.drop_table,
            "VIEW": catalog.drop_view,
            "SEQUENCE": catalog.drop_sequence,
            "INDEX": catalog.drop_index,
        }
        dispatch[statement.kind](statement.name, statement.if_exists)
        return Result()

    def _execute_insert_values(self, statement: ast.InsertValues) -> Result:
        table = self.catalog.get_table(statement.table)
        evaluator = Evaluator(self, self._params)
        count = 0
        for row_exprs in statement.rows:
            values = [evaluator.eval(e, None) for e in row_exprs]
            table.insert(self._align_insert(table, statement.columns, values))
            count += 1
        return Result(rowcount=count)

    def _execute_insert_select(self, statement: ast.InsertSelect) -> Result:
        columns, rows = self._run_select_raw(statement.select)
        if not self.catalog.has_table(statement.table):
            # Convenience extension: auto-create the target from the
            # SELECT output schema (the paper's translation programs
            # INSERT into fresh working tables).
            target_columns = list(statement.columns) if statement.columns else columns
            table = Table(statement.table, target_columns)
            self.catalog.create_table(table)
        else:
            table = self.catalog.get_table(statement.table)
        count = 0
        for row in rows:
            table.insert(self._align_insert(table, statement.columns, list(row)))
            count += 1
        return Result(rowcount=count)

    @staticmethod
    def _align_insert(
        table: Table, columns: Sequence[str], values: List[Any]
    ) -> List[Any]:
        if not columns:
            return values
        if len(columns) != len(values):
            raise ExecutionError(
                f"INSERT column list has {len(columns)} names "
                f"but {len(values)} values"
            )
        full = [None] * table.arity
        for name, value in zip(columns, values):
            full[table.column_index(name)] = value
        return full

    def _execute_delete(self, statement: ast.Delete) -> Result:
        table = self.catalog.get_table(statement.table)
        if statement.where is None:
            count = len(table.rows)
            table.truncate()
            return Result(rowcount=count)
        evaluator = Evaluator(self, self._params)
        frame = Frame.single(statement.table, table.columns)
        kept: List[Row] = []
        removed = 0
        for row in table.rows:
            env = Env(frame, (row,))
            if evaluator.eval_predicate(statement.where, env):
                removed += 1
            else:
                kept.append(row)
        table.replace_rows(kept)
        return Result(rowcount=removed)

    def _execute_update(self, statement: ast.Update) -> Result:
        table = self.catalog.get_table(statement.table)
        evaluator = Evaluator(self, self._params)
        frame = Frame.single(statement.table, table.columns)
        indexes = [
            (table.column_index(name), expr) for name, expr in statement.assignments
        ]
        updated = 0
        new_rows: List[Row] = []
        for row in table.rows:
            env = Env(frame, (row,))
            if statement.where is None or evaluator.eval_predicate(
                statement.where, env
            ):
                mutable = list(row)
                for col_idx, expr in indexes:
                    value = evaluator.eval(expr, env)
                    declared = table.types[col_idx]
                    if declared is not None:
                        value = coerce_value(value, declared)
                    mutable[col_idx] = value
                new_rows.append(tuple(mutable))
                updated += 1
            else:
                new_rows.append(row)
        table.replace_rows(new_rows)
        return Result(rowcount=updated)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _default_name(expr: ast.Expression, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    if isinstance(expr, ast.SequenceNextval):
        return "nextval"
    return f"col{index + 1}"


def _apply_set_op(
    op: str, all_flag: bool, left: List[Row], right: List[Row]
) -> List[Row]:
    if op == "UNION":
        combined = left + right
        if all_flag:
            return combined
        return _dedupe(combined)
    if op == "INTERSECT":
        right_counts = _count_rows(right)
        out: List[Row] = []
        for row in left:
            if right_counts.get(row, 0) > 0:
                out.append(row)
                if all_flag:
                    right_counts[row] -= 1
        return out if all_flag else _dedupe(out)
    if op == "EXCEPT":
        right_counts = _count_rows(right)
        out = []
        for row in left:
            if right_counts.get(row, 0) > 0:
                if all_flag:
                    right_counts[row] -= 1
                continue
            out.append(row)
        return out if all_flag else _dedupe(out)
    raise ExecutionError(f"unknown set operation {op!r}")


def _dedupe(rows: List[Row]) -> List[Row]:
    seen: Dict[Row, None] = {}
    for row in rows:
        if row not in seen:
            seen[row] = None
    return list(seen.keys())


def _count_rows(rows: List[Row]) -> Dict[Row, int]:
    counts: Dict[Row, int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


def _sort_rows(
    rows: List[Row],
    keys: List[Tuple[Any, ...]],
    order_by: Sequence[ast.OrderItem],
) -> List[Row]:
    def cmp(a: Tuple[int, Tuple[Any, ...]], b: Tuple[int, Tuple[Any, ...]]) -> int:
        for position, item in enumerate(order_by):
            left = keys[a[0]][position]
            right = keys[b[0]][position]
            if left is None and right is None:
                continue
            # NULL compares as the largest value: last in ASC, first in
            # DESC (Oracle's default NULLS LAST / NULLS FIRST).
            if left is None:
                return 1 if item.ascending else -1
            if right is None:
                return -1 if item.ascending else 1
            if compare("<", left, right) is True:
                result = -1
            elif compare(">", left, right) is True:
                result = 1
            else:
                continue
            return result if item.ascending else -result
        return 0

    indexed = list(enumerate(rows))
    indexed.sort(key=functools.cmp_to_key(cmp))
    return [row for _, row in indexed]
