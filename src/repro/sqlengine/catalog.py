"""The catalog (data dictionary): tables, views, sequences, indexes.

The paper's translator "checks the correctness of the statement by
accessing the DBMS Data Dictionary" — :meth:`Catalog.describe` and
:meth:`Catalog.resolve_columns` provide that service to the mining
kernel.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import CatalogError
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType


@dataclass
class Sequence:
    """Oracle-style monotone integer generator (``seq.NEXTVAL``).

    ``nextval`` is atomic: concurrent job workers drawing from one
    sequence never observe a duplicate or skipped value.
    """

    name: str
    next_value: int = 1
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def nextval(self) -> int:
        with self._lock:
            value = self.next_value
            self.next_value += 1
            return value

    def reset(self, start: int = 1) -> None:
        with self._lock:
            self.next_value = start


@dataclass
class View:
    """A named, non-materialized query (re-planned on each reference)."""

    name: str
    select: ast.Select


@dataclass
class Index:
    """Recorded index definition; used as a planning hint only."""

    name: str
    table: str
    columns: Tuple[str, ...]


class Catalog:
    """Case-insensitive namespace of database objects."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._views: Dict[str, View] = {}
        self._sequences: Dict[str, Sequence] = {}
        self._indexes: Dict[str, Index] = {}
        #: serializes DDL against concurrent lookups: every mutator
        #: (and the version bump) runs under it, so a plan-cache probe
        #: can never observe a half-applied create/drop
        self._lock = threading.RLock()
        #: monotone counter bumped by every DDL change; the engine's
        #: plan cache keys on it, so any catalog change evicts plans
        self.version = 0

    def _bump_version(self) -> None:
        with self._lock:
            self.version += 1

    # -- tables -----------------------------------------------------------

    def create_table(self, table: Table) -> None:
        key = table.name.lower()
        with self._lock:
            if key in self._tables or key in self._views:
                raise CatalogError(f"object {table.name!r} already exists")
            self._tables[key] = table
            self._bump_version()

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                if if_exists:
                    return False
                raise CatalogError(f"no such table: {name!r}")
            del self._tables[key]
            self._indexes = {
                k: ix for k, ix in self._indexes.items() if ix.table.lower() != key
            }
            self._bump_version()
            return True

    def tables(self) -> List[Table]:
        with self._lock:
            return list(self._tables.values())

    # -- views --------------------------------------------------------------

    def create_view(self, view: View, or_replace: bool = False) -> None:
        key = view.name.lower()
        with self._lock:
            if key in self._tables:
                raise CatalogError(
                    f"object {view.name!r} already exists as a table"
                )
            if key in self._views and not or_replace:
                raise CatalogError(f"view {view.name!r} already exists")
            self._views[key] = view
            self._bump_version()

    def get_view(self, name: str) -> View:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no such view: {name!r}") from None

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def drop_view(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._views:
                if if_exists:
                    return False
                raise CatalogError(f"no such view: {name!r}")
            del self._views[key]
            self._bump_version()
            return True

    def views(self) -> List[View]:
        with self._lock:
            return list(self._views.values())

    # -- sequences ------------------------------------------------------------

    def create_sequence(self, name: str, start: int = 1) -> Sequence:
        key = name.lower()
        with self._lock:
            if key in self._sequences:
                raise CatalogError(f"sequence {name!r} already exists")
            seq = Sequence(name, start)
            self._sequences[key] = seq
            self._bump_version()
            return seq

    def get_sequence(self, name: str) -> Sequence:
        try:
            return self._sequences[name.lower()]
        except KeyError:
            raise CatalogError(f"no such sequence: {name!r}") from None

    def has_sequence(self, name: str) -> bool:
        return name.lower() in self._sequences

    def drop_sequence(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._sequences:
                if if_exists:
                    return False
                raise CatalogError(f"no such sequence: {name!r}")
            del self._sequences[key]
            self._bump_version()
            return True

    # -- indexes -----------------------------------------------------------

    def create_index(self, index: Index) -> None:
        key = index.name.lower()
        with self._lock:
            if key in self._indexes:
                raise CatalogError(f"index {index.name!r} already exists")
            table = self.get_table(index.table)
            table.create_index(index.name, index.columns)
            self._indexes[key] = index
            self._bump_version()

    def drop_index(self, name: str, if_exists: bool = False) -> bool:
        key = name.lower()
        with self._lock:
            if key not in self._indexes:
                if if_exists:
                    return False
                raise CatalogError(f"no such index: {name!r}")
            index = self._indexes.pop(key)
            if self.has_table(index.table):
                self.get_table(index.table).drop_index(name)
            self._bump_version()
            return True

    # -- data dictionary services -------------------------------------------

    def exists(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._views

    def describe(self, name: str) -> List[Tuple[str, Optional[SqlType]]]:
        """Column names and types of a table (views are resolved lazily
        by the executor, so only their names are known here)."""
        key = name.lower()
        if key in self._tables:
            table = self._tables[key]
            return list(zip(table.columns, table.types))
        raise CatalogError(f"no such table: {name!r}")

    def storage_of(self, name: str) -> str:
        """Physical layout of a base table ("row" or "columnar")."""
        return getattr(self.get_table(name), "storage", "row")
