"""Command-line shell for the mining system.

The paper delegates user support to the AMORE environment [4]; this
module provides the equivalent entry point for the reproduction: an
interactive (or scripted) shell that accepts both SQL and MINE RULE
statements against one embedded database.

Usage::

    python -m repro                       # interactive
    python -m repro -c ".load purchase" -c "SELECT * FROM Purchase"
    python -m repro -f session.sql        # run a script

Statements end with ``;`` (or a lone line for meta commands).  Meta
commands start with a dot:

=====================  ==================================================
``.help``              this text
``.tables``            list tables and views
``.schema NAME``       columns of a table
``.load SCENARIO``     load a dataset: purchase | purchase-synthetic |
                       quest | clicks | telecom
``.algorithm NAME``    select the pool algorithm for simple rules
``.explain SQL``       show the physical plan of a SELECT
``.analyze SQL``       EXPLAIN ANALYZE: run the statement once and show
                       actual rows/loops/time per plan node
``.trace [FILE]``      consolidated span report of this session, or
                       write the Chrome trace-event JSON to FILE
                       (requires ``--trace-out``)
``.report [SORT]``     full report of the last MINE RULE run
                       (sort: support | confidence | lift)
``.dump DIR``          persist the database to a directory
``.restore DIR``       load a previously dumped database
``.experiments``       run the full reproduction suite (FIG/SYN)
``.timing on|off``     print per-statement wall time
``.faults [SPEC]``     show resilience counters of the last run, or
                       install a fault schedule (``off`` to remove;
                       spec: ``site:call[*times][@latency],...``)
``.metrics``           Prometheus text dump of the metrics registry
``.slowlog``           slowest recorded statements (serve mode)
``.jobs``              job-service snapshot: states, queue depth,
                       worker utilization (serve mode)
``.quit``              leave the shell
=====================  ==================================================

``python -m repro serve`` starts the long-running serving mode instead:
MINE RULE statements on stdin, a monitoring HTTP endpoint
(``/metrics``, ``/healthz``, ``/stats.json``, ``/trace.json``) on a
side thread — see :mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro import faults
from repro.algorithms import ALGORITHMS
from repro.datagen import (
    QuestParameters,
    load_clickstream,
    load_purchase_figure1,
    load_purchase_synthetic,
    load_quest,
    load_telecom,
)
from repro.faults import FaultError, FaultSchedule, RetryPolicy
from repro.minerule.errors import MineRuleError
from repro.obs import context as obs_context
from repro.obs import (
    NULL_TRACER,
    Tracer,
    render_obs_report,
    write_chrome_trace,
)
from repro.sqlengine import STORAGE_KINDS
from repro.sqlengine.errors import SqlError
from repro.system import MiningSystem

#: scenario name -> loader(db) used by ``.load``
SCENARIOS: Dict[str, Callable] = {
    "purchase": load_purchase_figure1,
    "purchase-synthetic": load_purchase_synthetic,
    "quest": lambda db: load_quest(db, QuestParameters()),
    "clicks": load_clickstream,
    "telecom": load_telecom,
}


class Shell:
    """Stateful shell: one mining system, one database.

    ``execute`` returns the text that would be printed, which keeps the
    shell fully testable without capturing stdout.
    """

    def __init__(
        self,
        algorithm: str = "apriori",
        retry_policy: Optional[RetryPolicy] = None,
        resume: bool = False,
        tracer: Optional[Tracer] = None,
        metrics=None,
        slowlog=None,
        health=None,
        json_log=None,
        runlog=None,
        workers: int = 1,
        shards: Optional[int] = None,
        shard_start_method: Optional[str] = None,
        storage: Optional[str] = None,
        batch_size: Optional[int] = None,
        memory_budget: Optional[int] = None,
        packed_min_slots: Optional[int] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.slowlog = slowlog
        self.health = health
        #: structured logger (``repro.obs.jsonlog.JsonLogger``) or None
        self.json_log = json_log
        #: run-history journal (``repro.obs.runlog.RunLog``) or None
        self.runlog = runlog
        self.system = MiningSystem(
            algorithm=algorithm, retry_policy=retry_policy,
            tracer=self.tracer, metrics=metrics, slowlog=slowlog,
            health=health, runlog=runlog, workers=workers, shards=shards,
            shard_start_method=shard_start_method,
            storage=storage, batch_size=batch_size,
            memory_budget=memory_budget,
            packed_min_slots=packed_min_slots,
        )
        #: job service (``repro.jobs.JobService``) attached by serve
        #: mode so ``.jobs`` can report it; None in the plain shell
        self.jobs = None
        #: resume MINE RULE statements from crash checkpoints
        self.resume = resume
        self.timing = False
        self._buffer: List[str] = []
        #: result of the last MINE RULE statement (for ``.report``)
        self.last_result = None

    @property
    def db(self):
        return self.system.db

    # -- statement interface -------------------------------------------

    def feed(self, line: str) -> Optional[str]:
        """Feed one input line; returns output once a full statement
        (terminated by ``;``) or meta command has accumulated."""
        stripped = line.strip()
        if not self._buffer and stripped.startswith("."):
            return self.execute(stripped)
        self._buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self._buffer)
            self._buffer = []
            return self.execute(statement)
        return None

    @property
    def pending(self) -> bool:
        return bool(self._buffer)

    def execute(self, text: str) -> str:
        """Execute one complete statement or meta command."""
        text = text.strip().rstrip(";").strip()
        if not text:
            return ""
        if text.startswith("."):
            kind = "meta"
        elif text.upper().startswith("MINE"):
            kind = "mine"
        elif text.upper().startswith("REFRESH"):
            kind = "refresh"
        else:
            kind = "sql"
        started = time.perf_counter()
        # one trace context per statement, so spans, slow-query
        # entries, run-history records and the statement log line all
        # correlate on the same trace id
        with obs_context.ensure():
            try:
                if kind == "meta":
                    output = self._meta(text)
                elif kind == "mine":
                    output = self._mine(text)
                elif kind == "refresh":
                    output = self._refresh(text)
                else:
                    output = self._sql(text)
                self._log_statement(kind, text, started, ok=True)
                if self.timing:
                    elapsed = (time.perf_counter() - started) * 1000
                    output = f"{output}\n({elapsed:.1f} ms)" if output else (
                        f"({elapsed:.1f} ms)"
                    )
                return output
            except FaultError as exc:
                self._log_statement(
                    kind, text, started, ok=False, error=exc
                )
                return (
                    f"error: {exc}\n"
                    f"(injected fault survived retries; "
                    f"re-run with --resume to continue from the checkpoint)"
                )
            except (SqlError, MineRuleError, KeyError, ValueError) as exc:
                self._log_statement(
                    kind, text, started, ok=False, error=exc
                )
                return f"error: {exc}"

    def _log_statement(
        self, kind: str, text: str, started: float, ok: bool, error=None
    ) -> None:
        if self.json_log is None:
            return
        fields = {
            "kind": kind,
            "statement": " ".join(text.split())[:200],
            "ms": round((time.perf_counter() - started) * 1000, 3),
            "ok": ok,
        }
        if error is not None:
            fields["error"] = str(error)
            self.json_log.error("statement", **fields)
        else:
            self.json_log.log("statement", **fields)

    # -- statement kinds --------------------------------------------------

    def _sql(self, text: str) -> str:
        stripped = text.lstrip()
        if stripped[:16].upper() == "EXPLAIN ANALYZE ":
            return self.db.explain_analyze(stripped[16:])
        if stripped[:8].upper() == "EXPLAIN ":
            return self.db.explain(stripped[8:])
        result = self.db.execute(text)
        if result.columns:
            return f"{result.pretty(limit=50)}\n({len(result)} rows)"
        return f"ok ({result.rowcount} rows affected)"

    def _mine(self, text: str) -> str:
        result = self.system.run(text, resume=self.resume)
        self.last_result = result
        out = result.statement.output_table
        lines = [
            f"directives: {result.directives}",
            f"{len(result.rules)} rules -> {out}, {out}_Bodies, "
            f"{out}_Heads, {out}_Display",
        ]
        if result.resilience is not None and result.resilience.any():
            lines.append(f"resilience: {result.resilience.describe()}")
        if self.db.catalog.has_table(f"{out}_Display"):
            lines.append(self.db.table(f"{out}_Display").pretty(limit=25))
        return "\n".join(lines)

    def _refresh(self, text: str) -> str:
        result = self.system.refresh(text, resume=self.resume)
        out = result.statement.output_table
        stats = result.stats
        if stats.mode == "full":
            detail = f"full re-mine ({stats.reason})"
        else:
            detail = (
                f"incremental: {stats.delta_rows} appended rows, "
                f"{stats.delta_pairs} new pairs, "
                f"{stats.recounted_itemsets} itemsets recounted"
            )
        lines = [
            f"refreshed {out} — {detail}",
            f"{len(result.rules)} rules -> {out}, {out}_Bodies, "
            f"{out}_Heads, {out}_Display",
        ]
        if self.db.catalog.has_table(f"{out}_Display"):
            lines.append(self.db.table(f"{out}_Display").pretty(limit=25))
        return "\n".join(lines)

    # -- meta commands -----------------------------------------------------

    def _meta(self, text: str) -> str:
        parts = text.split(None, 1)
        command = parts[0].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if command in (".help", ".h"):
            return __doc__.split("Usage::", 1)[1]
        if command == ".tables":
            tables = sorted(t.name for t in self.db.catalog.tables())
            views = sorted(v.name for v in self.db.catalog.views())
            lines = [f"  {name}" for name in tables]
            lines += [f"  {name} (view)" for name in views]
            return "\n".join(lines) if lines else "(no tables)"
        if command == ".schema":
            if not argument:
                return "usage: .schema TABLE"
            described = self.db.catalog.describe(argument)
            return "\n".join(
                f"  {name} {ctype or '?'}" for name, ctype in described
            )
        if command == ".load":
            loader = SCENARIOS.get(argument)
            if loader is None:
                return (
                    f"unknown scenario {argument!r}; "
                    f"available: {', '.join(sorted(SCENARIOS))}"
                )
            table = loader(self.db)
            self.system.invalidate_preprocessing()
            return f"loaded {table.name} ({len(table)} rows)"
        if command == ".algorithm":
            if argument not in ALGORITHMS:
                return (
                    f"unknown algorithm {argument!r}; "
                    f"available: {', '.join(sorted(ALGORITHMS))}"
                )
            from repro.algorithms import get_algorithm

            self.system.algorithm = get_algorithm(argument)
            return f"core algorithm set to {argument}"
        if command == ".explain":
            if not argument:
                return "usage: .explain SELECT ..."
            return self.db.explain(argument)
        if command == ".analyze":
            if not argument:
                return "usage: .analyze STATEMENT (executes it once)"
            return self.db.explain_analyze(argument)
        if command == ".trace":
            if not self.tracer.enabled:
                return (
                    "tracing is off; start the shell with "
                    "--trace-out FILE to record spans"
                )
            if argument:
                path = write_chrome_trace(self.tracer, argument)
                return f"wrote Chrome trace ({len(self.tracer.spans)} spans) to {path}"
            return render_obs_report(self.tracer)
        if command == ".experiments":
            from repro.experiments import generate_report

            return generate_report()
        if command == ".report":
            if self.last_result is None:
                return "no MINE RULE statement executed yet"
            from repro.report import ReportOptions, render_report

            sort_by = argument or "support"
            metrics = self.system.compute_metrics(
                self.last_result, store=False
            )
            return render_report(
                self.system,
                self.last_result,
                metrics,
                ReportOptions(sort_by=sort_by),
            )
        if command == ".dump":
            if not argument:
                return "usage: .dump DIRECTORY"
            from repro.sqlengine.dump import dump_database

            target = dump_database(self.db, argument)
            return f"dumped catalog to {target}"
        if command == ".restore":
            if not argument:
                return "usage: .restore DIRECTORY"
            from repro.sqlengine.dump import load_database

            old_options = self.db.options
            self.system = MiningSystem(
                database=load_database(argument),
                algorithm=self.system.algorithm,
                tracer=self.tracer,
                metrics=self.metrics,
                slowlog=self.slowlog,
                health=self.health,
                workers=self.system.workers,
                shards=self.system.shards,
                shard_start_method=self.system.shard_start_method,
                storage=self.system.storage,
                batch_size=old_options.batch_size,
                memory_budget=old_options.memory_budget,
            )
            return f"restored catalog from {argument}"
        if command == ".timing":
            self.timing = argument.lower() == "on"
            return f"timing {'on' if self.timing else 'off'}"
        if command == ".faults":
            if argument.lower() == "off":
                faults.uninstall()
                return "fault schedule removed"
            if argument:
                faults.install(FaultSchedule.parse(argument))
                return f"fault schedule installed: {argument}"
            schedule = faults.active()
            lines = []
            if schedule is not None:
                lines.append(
                    f"active schedule: {len(schedule.specs)} spec(s), "
                    f"{schedule.errors_injected} error(s) and "
                    f"{schedule.latencies_injected} latency fault(s) fired"
                )
            else:
                lines.append("no fault schedule installed")
            if (
                self.last_result is not None
                and self.last_result.resilience is not None
            ):
                lines.append(
                    f"last run: {self.last_result.resilience.describe()}"
                )
            return "\n".join(lines)
        if command == ".metrics":
            metrics = self.system.metrics
            if not metrics.enabled:
                return (
                    "metrics are off; serve mode (python -m repro serve) "
                    "collects them, or pass a registry to the Shell"
                )
            from repro.obs.promtext import render_prometheus

            return render_prometheus(metrics).rstrip("\n")
        if command == ".slowlog":
            if self.slowlog is None:
                return "no slow-query log attached (serve mode has one)"
            return self.slowlog.render()
        if command == ".jobs":
            if self.jobs is None:
                return (
                    "no job service attached (serve mode runs one; "
                    "POST /jobs on the monitoring port)"
                )
            stats = self.jobs.stats()
            lines = [
                f"workers: {stats['workers']} "
                f"({stats['workers_busy']} busy), "
                f"queue depth: {stats['queue_depth']}",
                f"jobs: {stats['total']} "
                f"({stats['evicted']} evicted)",
            ]
            for state in sorted(stats["counts"]):
                lines.append(f"  {state}: {stats['counts'][state]}")
            recent = self.jobs.list()[-10:]
            for job in recent:
                runtime = job.runtime()
                suffix = (
                    f" [{runtime * 1000:.1f} ms]"
                    if runtime is not None
                    else ""
                )
                lines.append(
                    f"  {job.id} {job.state} ({job.kind}){suffix}"
                )
            return "\n".join(lines)
        if command in (".quit", ".exit", ".q"):
            raise EOFError
        return f"unknown command {command!r}; try .help"


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        from repro.serve import main as serve_main

        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MINE RULE shell (tightly-coupled data mining); "
        "'repro serve' starts the monitored serving mode",
    )
    parser.add_argument(
        "-c", "--command", action="append", default=[],
        help="statement to run (repeatable); skips the interactive loop",
    )
    parser.add_argument(
        "-f", "--file", help="run statements from a script file"
    )
    parser.add_argument(
        "--algorithm", default="apriori",
        choices=sorted(ALGORITHMS),
        help="pool algorithm for simple rules",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume MINE RULE statements from crash checkpoints",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the core operator across N worker processes "
        "(1 = serial; see repro.parallel)",
    )
    parser.add_argument(
        "--shard-start-method", default=None, metavar="METHOD",
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for the shard pool "
        "(default: platform default)",
    )
    parser.add_argument(
        "--storage", default=None, choices=STORAGE_KINDS,
        help="physical layout of the encoded tables the preprocessor "
        "creates (default: columnar)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="ROWS",
        help="rows per batch in the vectorized executor "
        "(default: engine default)",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="estimated bytes an executor operator may hold before "
        "spilling to disk (default: unbounded)",
    )
    parser.add_argument(
        "--packed-min-slots", type=int, default=None, metavar="SLOTS",
        help="smallest bitmap universe carried by the packed word "
        "kernels (default: repro.algorithms.bitset.PACKED_MIN_SLOTS)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry faulted pipeline stages up to N attempts "
        "(capped exponential backoff)",
    )
    parser.add_argument(
        "--fault-schedule", default=None, metavar="SPEC",
        help="install a deterministic fault schedule, e.g. "
        "'preprocessor.Q4:1;engine.execute:3*2' or 'seed=42' "
        "for a random one",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record spans + EXPLAIN ANALYZE for every statement and "
        "write a Chrome trace-event JSON (chrome://tracing, Perfetto) "
        "to FILE on exit",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one structured JSON log line per statement on stderr",
    )
    parser.add_argument(
        "--profile-mem", action="store_true",
        help="with --trace-out: attribute peak traced memory to spans "
        "via tracemalloc (costs real time)",
    )
    args = parser.parse_args(argv)

    if args.fault_schedule:
        spec = args.fault_schedule
        if spec.startswith("seed="):
            faults.install(FaultSchedule.random(int(spec[5:])))
        else:
            faults.install(FaultSchedule.parse(spec))
    retry_policy = (
        RetryPolicy(max_attempts=args.retries)
        if args.retries is not None
        else None
    )
    tracer = (
        Tracer(enabled=True, analyze=True, profile_mem=args.profile_mem)
        if args.trace_out
        else NULL_TRACER
    )
    json_log = None
    if args.log_json:
        from repro.obs.jsonlog import JsonLogger

        json_log = JsonLogger()
    shell = Shell(
        algorithm=args.algorithm,
        retry_policy=retry_policy,
        resume=args.resume,
        tracer=tracer,
        json_log=json_log,
        workers=args.workers,
        shard_start_method=args.shard_start_method,
        storage=args.storage,
        batch_size=args.batch_size,
        memory_budget=args.memory_budget,
        packed_min_slots=args.packed_min_slots,
    )
    try:
        if args.command or args.file:
            statements = list(args.command)
            if args.file:
                with open(args.file, "r", encoding="utf-8") as handle:
                    statements.extend(
                        chunk.strip()
                        for chunk in handle.read().split(";")
                        if chunk.strip()
                    )
            for statement in statements:
                output = shell.execute(statement)
                if output:
                    print(output)
            return 0

        print("repro MINE RULE shell — .help for commands, .quit to exit")
        while True:
            prompt = "   ...> " if shell.pending else "repro> "
            try:
                line = input(prompt)
            except EOFError:
                print()
                return 0
            try:
                output = shell.feed(line)
            except EOFError:
                return 0
            if output:
                print(output)
    finally:
        if args.trace_out:
            path = write_chrome_trace(tracer, args.trace_out)
            print(f"trace written to {path} ({len(tracer.spans)} spans)")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
