"""The MINE RULE language front end.

This package implements the SQL-like data-mining operator of Section 2
and the grammar of Section 4.1 of the paper: the lexer/parser
(:mod:`repro.minerule.parser`), the statement AST
(:mod:`repro.minerule.statements`), the semantic checks 1-4 performed
by the translator against the data dictionary
(:mod:`repro.minerule.validator`) and the classification into the
boolean directives H, W, M, G, C, K, F, R
(:mod:`repro.minerule.classifier`).
"""

from repro.minerule.classifier import Directives, classify
from repro.minerule.errors import (
    MineRuleError,
    MineRuleParseError,
    MineRuleValidationError,
)
from repro.minerule.parser import parse_mine_rule, parse_refresh
from repro.minerule.render import render_mine_rule
from repro.minerule.statements import (
    ItemDescriptor,
    MineRuleStatement,
    RefreshStatement,
)
from repro.minerule.validator import validate

__all__ = [
    "Directives",
    "ItemDescriptor",
    "MineRuleError",
    "MineRuleParseError",
    "MineRuleStatement",
    "MineRuleValidationError",
    "RefreshStatement",
    "classify",
    "parse_mine_rule",
    "parse_refresh",
    "render_mine_rule",
    "validate",
]
