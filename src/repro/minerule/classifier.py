"""Classification of MINE RULE statements into boolean directives.

Section 4.1 defines eight boolean variables that drive the
preprocessor, core operator and postprocessor:

===  =========================================================
H    body and head are relative to different attributes
W    a source condition is present (or several source tables)
M    a mining condition is present
G    a group condition (GROUP BY .. HAVING) is present
C    a CLUSTER BY clause is present
K    a cluster condition is present            (K implies C)
F    the cluster condition contains aggregates (F implies K)
R    the group condition contains aggregates   (R implies G)
===  =========================================================

A statement is in the *simple association rules* class when neither H,
C nor M holds (Section 3); otherwise the *general* core algorithm is
required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.minerule.statements import MineRuleStatement
from repro.sqlengine import ast_nodes as sql
from repro.sqlengine.parser import AGGREGATE_NAMES


@dataclass(frozen=True)
class Directives:
    """The classification vector; immutable, shared by the kernel
    components as "directives from the translator"."""

    H: bool
    W: bool
    M: bool
    G: bool
    C: bool
    K: bool
    F: bool
    R: bool

    def __post_init__(self) -> None:
        if self.K and not self.C:
            raise ValueError("inconsistent directives: K requires C")
        if self.F and not self.K:
            raise ValueError("inconsistent directives: F requires K")
        if self.R and not self.G:
            raise ValueError("inconsistent directives: R requires G")

    @property
    def simple(self) -> bool:
        """Simple association rules: same body/head attributes, no
        clusters, no mining condition (Section 3, class 1)."""
        return not (self.H or self.C or self.M)

    @property
    def general(self) -> bool:
        return not self.simple

    def as_tuple(self):
        return (
            self.H,
            self.W,
            self.M,
            self.G,
            self.C,
            self.K,
            self.F,
            self.R,
        )

    def __str__(self) -> str:
        flags = "".join(
            name if value else name.lower()
            for name, value in zip("HWMGCKFR", self.as_tuple())
        )
        kind = "simple" if self.simple else "general"
        return f"{flags} ({kind})"


def _has_aggregates(expr: Optional[sql.Expression]) -> bool:
    if expr is None:
        return False
    for node in sql.walk_expression(expr):
        if isinstance(node, sql.FunctionCall) and (
            node.name in AGGREGATE_NAMES or node.star
        ):
            return True
    return False


def classify(statement: MineRuleStatement) -> Directives:
    """Compute the directive vector for *statement*."""
    return Directives(
        H=not statement.same_schema,
        W=statement.source_condition is not None or len(statement.from_list) > 1,
        M=statement.mining_condition is not None,
        G=statement.group_condition is not None,
        C=statement.has_clusters,
        K=statement.cluster_condition is not None,
        F=_has_aggregates(statement.cluster_condition),
        R=_has_aggregates(statement.group_condition),
    )
