"""Render MINE RULE statement ASTs back to statement text.

The inverse of :mod:`repro.minerule.parser`.  Tooling uses it to log
normalized statements, and the test suite uses the parse -> render ->
parse round trip as a grammar-coverage property.
"""

from __future__ import annotations

from typing import List

from repro.minerule.statements import ItemDescriptor, MineRuleStatement
from repro.sqlengine.render import render_expr


def render_mine_rule(statement: MineRuleStatement) -> str:
    """Render *statement* as parseable MINE RULE text."""
    lines: List[str] = [f"MINE RULE {statement.output_table} AS"]

    select_items = [
        _render_descriptor(statement.body, "BODY"),
        _render_descriptor(statement.head, "HEAD"),
    ]
    if statement.select_support:
        select_items.append("SUPPORT")
    if statement.select_confidence:
        select_items.append("CONFIDENCE")
    lines.append("SELECT DISTINCT " + ", ".join(select_items))

    if statement.mining_condition is not None:
        lines.append("WHERE " + render_expr(statement.mining_condition))

    tables = ", ".join(
        f"{t.name} AS {t.alias}" if t.alias else t.name
        for t in statement.from_list
    )
    from_line = f"FROM {tables}"
    if statement.source_condition is not None:
        from_line += " WHERE " + render_expr(statement.source_condition)
    lines.append(from_line)

    group_line = "GROUP BY " + ", ".join(statement.group_attributes)
    if statement.group_condition is not None:
        group_line += " HAVING " + render_expr(statement.group_condition)
    lines.append(group_line)

    if statement.cluster_attributes:
        cluster_line = "CLUSTER BY " + ", ".join(
            statement.cluster_attributes
        )
        if statement.cluster_condition is not None:
            cluster_line += " HAVING " + render_expr(
                statement.cluster_condition
            )
        lines.append(cluster_line)

    lines.append(
        f"EXTRACTING RULES WITH SUPPORT: {statement.min_support}, "
        f"CONFIDENCE: {statement.min_confidence}"
    )
    return "\n".join(lines)


def _render_descriptor(descriptor: ItemDescriptor, side: str) -> str:
    return (
        f"{descriptor.card_text} "
        f"{', '.join(descriptor.attributes)} AS {side}"
    )
