"""Errors raised by the MINE RULE front end."""

from __future__ import annotations


class MineRuleError(Exception):
    """Base class for MINE RULE front-end errors."""


class MineRuleParseError(MineRuleError):
    """The statement text does not conform to the Section 4.1 grammar."""


class MineRuleValidationError(MineRuleError):
    """The statement violates one of the semantic checks 1-4 (Section
    4.1) against the data dictionary."""

    def __init__(self, message: str, check: int = 0):
        super().__init__(message)
        #: which of the paper's four checks failed (1-4), 0 for other
        self.check = check
