"""Parser for the MINE RULE operator (grammar of Section 4.1).

The parser extends the SQL recursive-descent parser so that the
embedded search conditions (mining, source, group and cluster
conditions) and the literal values reuse the engine's expression
grammar unchanged.  MINE RULE-specific words (MINE, RULE, CLUSTER,
EXTRACTING, ...) are ordinary identifiers in the SQL lexer and are
matched case-insensitively here, which keeps the two languages'
keyword spaces from colliding.

Example (the paper's running statement)::

    MINE RULE FilteredOrderedSets AS
    SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD,
           SUPPORT, CONFIDENCE
    WHERE BODY.price >= 100 AND HEAD.price < 100
    FROM Purchase WHERE date BETWEEN DATE '1995-01-01'
                                 AND DATE '1995-12-31'
    GROUP BY customer
    CLUSTER BY date HAVING BODY.date < HEAD.date
    EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.minerule.errors import MineRuleParseError
from repro.minerule.statements import (
    ItemDescriptor,
    MineRuleStatement,
    RefreshStatement,
)
from repro.sqlengine import ast_nodes as sql
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.lexer import TokenType
from repro.sqlengine.parser import Parser


class MineRuleParser(Parser):
    """Parses exactly one MINE RULE statement."""

    def __init__(self, text: str):
        super().__init__(text)
        self._text = text

    # -- word helpers (MINE RULE keywords are plain identifiers) ----------

    def _accept_word(self, word: str) -> bool:
        tok = self._current
        if tok.type is TokenType.IDENT and tok.value.upper() == word:
            self._advance()
            return True
        return False

    def _expect_word(self, word: str) -> None:
        if not self._accept_word(word):
            raise self._mr_error(f"expected {word}")

    def _peek_word(self, word: str, offset: int = 0) -> bool:
        tok = self._current if offset == 0 else self._peek(offset)
        return tok.type is TokenType.IDENT and tok.value.upper() == word

    def _mr_error(self, message: str) -> MineRuleParseError:
        tok = self._current
        near = f" (near {tok.text!r})" if tok.text else ""
        return MineRuleParseError(f"{message}{near} at line {tok.line}")

    # -- entry point --------------------------------------------------------

    def parse(self) -> MineRuleStatement:
        try:
            return self._mine_rule()
        except SqlParseError as exc:
            raise MineRuleParseError(str(exc)) from exc

    def parse_refresh(self) -> RefreshStatement:
        try:
            return self._refresh()
        except SqlParseError as exc:
            raise MineRuleParseError(str(exc)) from exc

    def _refresh(self) -> RefreshStatement:
        self._expect_word("REFRESH")
        self._expect_word("RULES")
        output_table = self._expect_ident()
        self._accept_symbol(";")
        if self._current.type is not TokenType.EOF:
            raise self._mr_error("unexpected trailing input")
        return RefreshStatement(output_table=output_table, text=self._text)

    def _mine_rule(self) -> MineRuleStatement:
        self._expect_word("MINE")
        self._expect_word("RULE")
        output_table = self._expect_ident()
        self._expect_keyword("AS")

        self._expect_keyword("SELECT")
        self._expect_keyword("DISTINCT")
        body = self._item_descriptor("BODY")
        self._expect_symbol(",")
        head = self._item_descriptor("HEAD", default_max=1)
        select_support = False
        select_confidence = False
        while self._accept_symbol(","):
            if self._accept_word("SUPPORT"):
                select_support = True
            elif self._accept_word("CONFIDENCE"):
                select_confidence = True
            else:
                raise self._mr_error("expected SUPPORT or CONFIDENCE")

        mining_condition = None
        if self._accept_keyword("WHERE"):
            mining_condition = self._expression()

        self._expect_keyword("FROM")
        from_list = self._mr_from_list()
        source_condition = None
        if self._accept_keyword("WHERE"):
            source_condition = self._expression()

        self._expect_keyword("GROUP")
        self._expect_keyword("BY")
        group_attributes = self._attribute_list()
        group_condition = None
        if self._accept_keyword("HAVING"):
            group_condition = self._expression()

        cluster_attributes: Tuple[str, ...] = ()
        cluster_condition = None
        if self._accept_word("CLUSTER"):
            self._expect_keyword("BY")
            cluster_attributes = tuple(self._attribute_list())
            if self._accept_keyword("HAVING"):
                cluster_condition = self._expression()

        self._expect_word("EXTRACTING")
        self._expect_word("RULES")
        self._expect_word("WITH")
        self._expect_word("SUPPORT")
        self._expect_symbol(":")
        min_support = self._threshold()
        self._expect_symbol(",")
        self._expect_word("CONFIDENCE")
        self._expect_symbol(":")
        min_confidence = self._threshold()

        self._accept_symbol(";")
        if self._current.type is not TokenType.EOF:
            raise self._mr_error("unexpected trailing input")

        return MineRuleStatement(
            output_table=output_table,
            body=body,
            head=head,
            select_support=select_support,
            select_confidence=select_confidence,
            from_list=tuple(from_list),
            group_attributes=tuple(group_attributes),
            min_support=min_support,
            min_confidence=min_confidence,
            mining_condition=mining_condition,
            source_condition=source_condition,
            group_condition=group_condition,
            cluster_attributes=cluster_attributes,
            cluster_condition=cluster_condition,
            text=self._text,
        )

    # -- clause parsers --------------------------------------------------

    def _item_descriptor(self, side: str, default_max: Optional[int] = None
                         ) -> ItemDescriptor:
        """``[<card spec>] <schema> AS BODY|HEAD``.

        Grammar defaults: body 1..n, head 1..1.  ``default_max`` carries
        the head default (None means unbounded).
        """
        card_min, card_max = 1, default_max
        if self._current.type is TokenType.NUMBER:
            card_min, card_max = self._card_spec()
        attributes = [self._expect_ident()]
        while self._accept_symbol(","):
            attributes.append(self._expect_ident())
        self._expect_keyword("AS")
        self._expect_word(side)
        return ItemDescriptor(tuple(attributes), card_min, card_max)

    def _card_spec(self) -> Tuple[int, Optional[int]]:
        low_tok = self._advance()
        if not isinstance(low_tok.value, int):
            raise self._mr_error("cardinality bound must be an integer")
        self._expect_symbol("..")
        tok = self._current
        if tok.type is TokenType.NUMBER:
            self._advance()
            if not isinstance(tok.value, int):
                raise self._mr_error("cardinality bound must be an integer")
            high: Optional[int] = tok.value
        elif tok.type is TokenType.IDENT and tok.value.lower() == "n":
            self._advance()
            high = None
        else:
            raise self._mr_error("expected integer or n after '..'")
        if low_tok.value < 1:
            raise self._mr_error("cardinality lower bound must be >= 1")
        if high is not None and high < low_tok.value:
            raise self._mr_error("empty cardinality range")
        return low_tok.value, high

    def _mr_from_list(self) -> List[sql.TableName]:
        tables = [self._mr_table()]
        while self._accept_symbol(","):
            tables.append(self._mr_table())
        return tables

    def _mr_table(self) -> sql.TableName:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT and not self._peek_word_any():
            alias = self._advance().value
        return sql.TableName(name, alias)

    def _peek_word_any(self) -> bool:
        """Whether the current identifier is a MINE RULE clause word."""
        tok = self._current
        return tok.type is TokenType.IDENT and tok.value.upper() in (
            "CLUSTER",
            "EXTRACTING",
        )

    def _attribute_list(self) -> List[str]:
        attrs = [self._expect_ident()]
        while self._accept_symbol(","):
            attrs.append(self._expect_ident())
        return attrs

    def _threshold(self) -> float:
        tok = self._current
        if tok.type is not TokenType.NUMBER:
            raise self._mr_error("expected a numeric threshold")
        self._advance()
        value = float(tok.value)
        if not 0.0 <= value <= 1.0:
            raise self._mr_error(
                f"threshold must be within [0, 1], got {value}"
            )
        return value


def parse_mine_rule(text: str) -> MineRuleStatement:
    """Parse a MINE RULE statement from *text*."""
    try:
        parser = MineRuleParser(text)  # tokenizes: may raise SqlParseError
    except SqlParseError as exc:
        raise MineRuleParseError(str(exc)) from exc
    return parser.parse()


def parse_refresh(text: str) -> RefreshStatement:
    """Parse a ``REFRESH RULES <output_table>`` statement from *text*."""
    try:
        parser = MineRuleParser(text)  # tokenizes: may raise SqlParseError
    except SqlParseError as exc:
        raise MineRuleParseError(str(exc)) from exc
    return parser.parse_refresh()
