"""Semantic checking of MINE RULE statements (Section 4.1, checks 1-4).

The translator invokes :func:`validate` with the source schema obtained
from the DBMS data dictionary.  The four checks, quoting the paper:

1. All attribute lists must be defined on the schema of source tables.
2. Grouping and clustering attributes must be disjoint sets, and the
   body and head schemas must be disjoint from grouping and clustering
   attributes.
3. The HAVING clause for grouping (clustering) can refer only to
   grouping (clustering) attributes.  *Relaxation (documented in
   DESIGN.md): inside aggregate functions any source attribute may
   appear, since aggregates are evaluated per group/cluster by query
   Q2/Q6 regardless of the aggregated attribute.*
4. The mining condition can refer to every attribute but the grouping
   and clustering ones.  References must be qualified with BODY or
   HEAD.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.minerule.errors import MineRuleValidationError
from repro.minerule.statements import MineRuleStatement
from repro.sqlengine import ast_nodes as sql
from repro.sqlengine.parser import AGGREGATE_NAMES

#: qualifiers with special meaning in mining / cluster conditions
RULE_SIDES = ("BODY", "HEAD")


def validate(statement: MineRuleStatement, source_columns: Sequence[str]) -> None:
    """Run checks 1-4 against the *source_columns* of the (joined)
    source tables; raises :class:`MineRuleValidationError` on the first
    violation."""
    columns = {c.lower() for c in source_columns}

    _check_1(statement, columns)
    _check_2(statement)
    _check_3(statement, columns)
    _check_4(statement)


# ---------------------------------------------------------------------------


def _check_1(statement: MineRuleStatement, columns: Set[str]) -> None:
    for label, attrs in (
        ("body schema", statement.body.attributes),
        ("head schema", statement.head.attributes),
        ("group attribute", statement.group_attributes),
        ("cluster attribute", statement.cluster_attributes),
    ):
        for attr in attrs:
            if attr.lower() not in columns:
                raise MineRuleValidationError(
                    f"{label} {attr!r} is not defined on the source schema "
                    f"(available: {', '.join(sorted(columns))})",
                    check=1,
                )


def _check_2(statement: MineRuleStatement) -> None:
    group = {a.lower() for a in statement.group_attributes}
    cluster = {a.lower() for a in statement.cluster_attributes}
    overlap = group & cluster
    if overlap:
        raise MineRuleValidationError(
            f"grouping and clustering attributes must be disjoint; "
            f"both contain: {', '.join(sorted(overlap))}",
            check=2,
        )
    partitioning = group | cluster
    for label, schema in (
        ("body", statement.body.attribute_set()),
        ("head", statement.head.attribute_set()),
    ):
        overlap = schema & partitioning
        if overlap:
            raise MineRuleValidationError(
                f"{label} schema must be disjoint from grouping/clustering "
                f"attributes; both contain: {', '.join(sorted(overlap))}",
                check=2,
            )


def _check_3(statement: MineRuleStatement, columns: Set[str]) -> None:
    if statement.group_condition is not None:
        _check_condition_refs(
            statement.group_condition,
            allowed={a.lower() for a in statement.group_attributes},
            all_columns=columns,
            label="group HAVING",
            sides_allowed=False,
            check=3,
        )
    if statement.cluster_condition is not None:
        _check_condition_refs(
            statement.cluster_condition,
            allowed={a.lower() for a in statement.cluster_attributes},
            all_columns=columns,
            label="cluster HAVING",
            sides_allowed=True,
            check=3,
        )


def _check_4(statement: MineRuleStatement) -> None:
    if statement.mining_condition is None:
        return
    forbidden = {a.lower() for a in statement.group_attributes} | {
        a.lower() for a in statement.cluster_attributes
    }
    for ref in _column_refs(statement.mining_condition):
        if ref.qualifier is None or ref.qualifier.upper() not in RULE_SIDES:
            raise MineRuleValidationError(
                f"mining condition references {ref} without a BODY/HEAD "
                f"qualifier",
                check=4,
            )
        if ref.name.lower() in forbidden:
            raise MineRuleValidationError(
                f"mining condition must not reference grouping/clustering "
                f"attribute {ref.name!r}",
                check=4,
            )


# ---------------------------------------------------------------------------


def _column_refs(expr: sql.Expression) -> List[sql.ColumnRef]:
    return [
        node
        for node in sql.walk_expression(expr)
        if isinstance(node, sql.ColumnRef)
    ]


def _aggregate_arg_refs(expr: sql.Expression) -> Set[int]:
    """Identities of ColumnRef nodes appearing inside aggregate calls."""
    inside: Set[int] = set()
    for node in sql.walk_expression(expr):
        if isinstance(node, sql.FunctionCall) and (
            node.name in AGGREGATE_NAMES or node.star
        ):
            for arg in node.args:
                for ref in _column_refs(arg):
                    inside.add(id(ref))
    return inside


def _check_condition_refs(
    condition: sql.Expression,
    allowed: Set[str],
    all_columns: Set[str],
    label: str,
    sides_allowed: bool,
    check: int,
) -> None:
    aggregate_refs = _aggregate_arg_refs(condition)
    for ref in _column_refs(condition):
        qualifier_ok = ref.qualifier is None or (
            sides_allowed and ref.qualifier.upper() in RULE_SIDES
        )
        if not qualifier_ok:
            raise MineRuleValidationError(
                f"{label} uses invalid qualifier {ref.qualifier!r} on "
                f"{ref.name!r}"
                + ("" if sides_allowed else " (BODY/HEAD not allowed here)"),
                check=check,
            )
        if id(ref) in aggregate_refs:
            # Relaxed rule: aggregates may range over any source column.
            if ref.name.lower() not in all_columns:
                raise MineRuleValidationError(
                    f"{label} aggregates unknown attribute {ref.name!r}",
                    check=1,
                )
            continue
        if ref.name.lower() not in allowed:
            raise MineRuleValidationError(
                f"{label} can refer only to its partitioning attributes; "
                f"{ref.name!r} is not one of: {', '.join(sorted(allowed))}",
                check=check,
            )
