"""AST for MINE RULE statements (grammar of Section 4.1).

Embedded search conditions (`<mining cond>`, `<source cond>`,
`<group cond>`, `<cluster cond>`) are ordinary SQL expression trees
from :mod:`repro.sqlengine.ast_nodes`; in the mining and cluster
conditions, column references qualified ``BODY.x`` / ``HEAD.x`` denote
the rule-element sides exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sqlengine import ast_nodes as sql


@dataclass(frozen=True)
class ItemDescriptor:
    """``[<card spec>] <schema> AS BODY|HEAD``.

    ``attributes`` is the (ordered) attribute list forming rule
    elements; ``card_min``/``card_max`` bound the element-set
    cardinality, with ``card_max is None`` meaning the grammar's ``n``
    (unbounded).
    """

    attributes: Tuple[str, ...]
    card_min: int = 1
    card_max: Optional[int] = None

    def admits(self, cardinality: int) -> bool:
        """Whether an element set of this size satisfies the spec."""
        if cardinality < self.card_min:
            return False
        return self.card_max is None or cardinality <= self.card_max

    @property
    def card_text(self) -> str:
        upper = "n" if self.card_max is None else str(self.card_max)
        return f"{self.card_min}..{upper}"

    def attribute_set(self) -> frozenset:
        return frozenset(a.lower() for a in self.attributes)


@dataclass(frozen=True)
class MineRuleStatement:
    """A parsed MINE RULE operation."""

    output_table: str
    body: ItemDescriptor
    head: ItemDescriptor
    select_support: bool
    select_confidence: bool
    from_list: Tuple[sql.TableName, ...]
    group_attributes: Tuple[str, ...]
    min_support: float
    min_confidence: float
    mining_condition: Optional[sql.Expression] = None
    source_condition: Optional[sql.Expression] = None
    group_condition: Optional[sql.Expression] = None
    cluster_attributes: Tuple[str, ...] = ()
    cluster_condition: Optional[sql.Expression] = None
    #: original statement text (kept for diagnostics / logging)
    text: str = ""

    @property
    def has_clusters(self) -> bool:
        return bool(self.cluster_attributes)

    @property
    def same_schema(self) -> bool:
        """True when body and head are defined on the same attributes
        (the H directive is the negation of this)."""
        return self.body.attribute_set() == self.head.attribute_set()

    def describe(self) -> str:
        """One-line summary used in traces and examples."""
        parts = [
            f"MINE RULE {self.output_table}",
            f"body {','.join(self.body.attributes)} [{self.body.card_text}]",
            f"head {','.join(self.head.attributes)} [{self.head.card_text}]",
            f"group by {','.join(self.group_attributes)}",
        ]
        if self.cluster_attributes:
            parts.append(f"cluster by {','.join(self.cluster_attributes)}")
        parts.append(f"support>={self.min_support}")
        parts.append(f"confidence>={self.min_confidence}")
        return "; ".join(parts)


@dataclass(frozen=True)
class RefreshStatement:
    """``REFRESH RULES <output_table>`` — bring a previously mined rule
    table up to date with rows appended to its source since the last
    run (or refresh) of the owning MINE RULE statement."""

    output_table: str
    #: original statement text (kept for diagnostics / logging)
    text: str = ""

    def describe(self) -> str:
        return f"REFRESH RULES {self.output_table}"
