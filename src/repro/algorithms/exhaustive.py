"""Exhaustive reference miner.

Enumerates candidate itemsets levelwise without any pruning beyond the
level cut-off (it still stops at the first empty level, which is safe
by downward closure).  Exponentially slower than the real pool members
— it exists as the oracle for tests and as the unflattering baseline
in the SYN-2 ablation bench, not for production use.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)


@register_algorithm
class Exhaustive(FrequentItemsetMiner):
    """Levelwise enumeration of every combination."""

    name = "exhaustive"

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        items = sorted({item for basket in groups.values() for item in basket})
        counts: Dict[FrozenSet[int], int] = {}
        for size in range(1, len(items) + 1):
            found_any = False
            for combo in itertools.combinations(items, size):
                candidate = frozenset(combo)
                count = sum(
                    1 for basket in groups.values() if candidate <= basket
                )
                if count >= min_count:
                    counts[candidate] = count
                    found_any = True
            if not found_any:
                break
        return counts
