"""Eclat — depth-first vertical mining (Zaki, TKDE 2000) with the
diffset refinement of dEclat (Zaki & Gouda, KDD 2003).

Where Apriori sweeps the itemset lattice breadth-first, Eclat walks it
depth-first over *equivalence classes* of a common prefix: the class
of prefix ``P`` holds the frequent extensions of ``P``, and each
member's support set is intersected with its right siblings' to form
the child class.  On the packed-bitset representation
(:mod:`repro.algorithms.bitset`) the support sets are big-int gid
bitmaps, so the whole algorithm is ``&``/``bit_count`` over dense
words — no candidate hashing, no per-level rescan.

Diffset pruning keeps the memory of deep classes small: below the
first level a member stores ``d(PX) = t(P) - t(PX)`` (the groups the
prefix has that the extension loses) instead of its full tidset, and

* from tidsets:  ``d(PXY) = t(PX) & ~t(PY)``,
* from diffsets: ``d(PXY) = d(PY) & ~d(PX)``,

with ``support(PXY) = support(PX) - popcount(d(PXY))`` in both cases.
Dense inputs shrink the diffsets rapidly, which is exactly the regime
where tidset intersection is at its most expensive.

The result is the exact :data:`~repro.algorithms.base.ItemsetCounts`
contract of the pool — identical to Apriori for every input.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)
from repro.algorithms.bitset import BitsetStats, SlotUniverse


@register_algorithm
class Eclat(FrequentItemsetMiner):
    """Depth-first vertical mining over gid bitmaps.

    ``diffsets`` selects dEclat's difference encoding below the first
    level (default); with ``False`` every class carries full tidsets —
    the knob exists for the ablation bench.
    """

    name = "eclat"

    def __init__(self, diffsets: bool = True):
        self.diffsets = diffsets
        #: observability: bitmap counters of the last run
        self.stats = BitsetStats()

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.stats.clear()
        counts: ItemsetCounts = {}

        universe = SlotUniverse(groups)
        item_maps = self.item_gid_bitmaps(groups, universe)
        self.stats.universe_sizes["gid"] = len(universe)
        self.stats.sample_density(item_maps.values(), len(universe))
        self.stats.passes += 1
        self.stats.candidates += len(item_maps)

        # Root class: frequent singletons in ascending item order (the
        # order fixes the prefix tree, making runs deterministic).
        root: List[Tuple[Tuple[int, ...], int, int]] = []
        for item in sorted(item_maps):
            tidset = item_maps[item]
            support = tidset.bit_count()
            self.stats.popcount_calls += 1
            if support >= min_count:
                counts[frozenset((item,))] = support
                root.append(((item,), tidset, support))
        self._expand(root, min_count, counts, parents_are_diffsets=False)
        return counts

    # ------------------------------------------------------------------

    def _expand(
        self,
        extensions: List[Tuple[Tuple[int, ...], int, int]],
        min_count: int,
        counts: ItemsetCounts,
        parents_are_diffsets: bool,
    ) -> None:
        """Recurse over one equivalence class.

        ``extensions`` holds ``(itemset, support set, support)``
        members sharing a prefix; the support set is a tidset bitmap
        or, when ``parents_are_diffsets``, a diffset bitmap.
        """
        self.stats.passes += 1  # one class expansion ~ one lattice round
        for i, (itemset_i, rep_i, support_i) in enumerate(extensions):
            children: List[Tuple[Tuple[int, ...], int, int]] = []
            for itemset_j, rep_j, _support_j in extensions[i + 1 :]:
                self.stats.candidates += 1
                if self.diffsets:
                    if parents_are_diffsets:
                        diff = rep_j & ~rep_i
                    else:
                        diff = rep_i & ~rep_j
                    support = support_i - diff.bit_count()
                    rep = diff
                else:
                    rep = rep_i & rep_j
                    support = rep.bit_count()
                self.stats.intersections += 1
                self.stats.popcount_calls += 1
                if support >= min_count:
                    child = itemset_i + (itemset_j[-1],)
                    counts[frozenset(child)] = support
                    children.append((child, rep, support))
            if children:
                self._expand(
                    children,
                    min_count,
                    counts,
                    parents_are_diffsets=self.diffsets,
                )
