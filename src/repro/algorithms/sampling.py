"""Toivonen's sampling algorithm (VLDB 1996).

A random sample of the groups is mined with a *lowered* threshold; the
resulting local itemsets plus their **negative border** (minimal
itemsets not locally frequent) are then counted exactly over the whole
input — usually one full pass, i.e. "more than one but less than two"
input scans as the paper puts it.  If some negative-border itemset
turns out to be globally frequent the sample missed part of the answer
and the algorithm falls back to an exact pass with the failed itemsets
as new seeds (here: a full Apriori run, preserving exactness).

The sample and therefore the runtime are randomized; the *result* never
is.  A fixed ``seed`` keeps runs reproducible.

The verification pass counts every candidate (local itemsets plus the
negative border) over the whole input: on the default ``"bitset"``
representation that is AND-and-popcount over the items' gid bitmaps;
``"set"`` keeps the original horizontal rescan for differential
testing.
"""

from __future__ import annotations

import math
import random
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.algorithms.apriori import Apriori
from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)
from repro.algorithms.bitset import (
    BitsetStats,
    SlotUniverse,
    packed_item_bitmaps,
    packed_kernels_enabled,
    validate_representation,
)


@register_algorithm
class ToivonenSampling(FrequentItemsetMiner):
    """Sampling with negative-border verification.

    ``sample_fraction`` is the share of groups sampled;
    ``lowering`` scales the threshold used on the sample (``< 1``
    lowers it, decreasing the miss probability at the cost of more
    candidates).
    """

    name = "sampling"

    def __init__(
        self,
        sample_fraction: float = 0.5,
        lowering: float = 0.8,
        seed: int = 12345,
        representation: str = "bitset",
    ):
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        if not 0 < lowering <= 1:
            raise ValueError("lowering must be in (0, 1]")
        self.sample_fraction = sample_fraction
        self.lowering = lowering
        self.seed = seed
        self.representation = validate_representation(representation)
        #: observability: True when the last run needed the fallback pass
        self.last_run_failed = False
        #: observability: bitmap counters of the last run
        self.stats = BitsetStats()

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.last_run_failed = False
        self.stats.clear()
        if not groups:
            return {}
        total = len(groups)

        rng = random.Random(self.seed)
        gids = sorted(groups)
        sample_size = max(1, round(self.sample_fraction * total))
        sample_gids = rng.sample(gids, sample_size)
        sample = {gid: groups[gid] for gid in sample_gids}

        fraction = min_count / total
        sample_min = max(
            1, math.floor(self.lowering * fraction * sample_size)
        )
        miner = Apriori(representation=self.representation)
        local = miner.mine(sample, sample_min)
        self.stats.merge(miner.stats)
        local_sets = set(local.keys())

        candidates = local_sets | self.negative_border(local_sets, groups)

        frequent = {
            candidate: count
            for candidate, count in self._count_candidates(
                groups, candidates
            ).items()
            if count >= min_count
        }
        border_failures = [
            candidate for candidate in frequent if candidate not in local_sets
        ]
        if border_failures:
            # The sample missed part of the answer: fall back to an
            # exact full pass so the result stays complete.
            self.last_run_failed = True
            fallback = Apriori(representation=self.representation)
            result = fallback.mine(groups, min_count)
            self.stats.merge(fallback.stats)
            return result
        return frequent

    def _count_candidates(
        self, groups: GroupMap, candidates: Set[FrozenSet[int]]
    ) -> Dict[FrozenSet[int], int]:
        """Exact counts of *candidates* over the whole input."""
        if self.representation == "set":
            counts: Dict[FrozenSet[int], int] = {c: 0 for c in candidates}
            for items in groups.values():
                for candidate in candidates:
                    if candidate <= items:
                        counts[candidate] += 1
            return counts
        universe = SlotUniverse(groups)
        if self.representation == "packed" and packed_kernels_enabled(
            len(universe)
        ):
            item_maps = packed_item_bitmaps(groups.items(), universe)
        else:
            item_maps = self.item_gid_bitmaps(groups, universe)
        self.stats.universe_sizes["gid"] = len(universe)
        counts = {}
        for candidate in candidates:
            mask = None
            missing = False
            for item in candidate:
                bitmap = item_maps.get(item)
                if bitmap is None:
                    missing = True
                    break
                mask = bitmap if mask is None else mask & bitmap
                self.stats.intersections += 1
                if not mask:
                    break
            self.stats.popcount_calls += 1
            counts[candidate] = (
                0 if missing or mask is None else mask.bit_count()
            )
        return counts

    @staticmethod
    def negative_border(
        frequent: Set[FrozenSet[int]], groups: GroupMap
    ) -> Set[FrozenSet[int]]:
        """Minimal itemsets (over the items present in *groups*) that
        are not in *frequent* but whose every proper subset is."""
        items: Set[int] = set()
        for group_items in groups.values():
            items.update(group_items)

        border: Set[FrozenSet[int]] = set()
        # Level 1: singletons not locally frequent.
        for item in items:
            singleton = frozenset((item,))
            if singleton not in frequent:
                border.add(singleton)
        # Higher levels: Apriori-style join of the frequent collection.
        by_size: Dict[int, List[Tuple[int, ...]]] = {}
        for itemset in frequent:
            ordered = tuple(sorted(itemset))
            by_size.setdefault(len(ordered), []).append(ordered)
        for size, level_sets in sorted(by_size.items()):
            for candidate in FrequentItemsetMiner.join_candidates(level_sets):
                candidate_set = frozenset(candidate)
                if candidate_set not in frequent:
                    border.add(candidate_set)
        return border
