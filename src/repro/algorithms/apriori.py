"""Apriori with group-id lists.

This is the algorithm sketched in Section 4.3.1 of the paper:

    "The algorithm incrementally builds the so-called large itemsets
    [...] moving up from singleton itemsets to itemsets of generic
    cardinality by adding one new item to already computed large
    itemsets.  [...] Support of an itemset is evaluated by counting
    elements in an associated list that contains identifiers of groups
    in which the itemset is present; the list is computed when the new
    itemset is generated."

Candidate generation and subset pruning follow Agrawal & Srikant
(VLDB 1994); support counting intersects the parents' group-id lists
instead of rescanning the data, which is exact because a group contains
``a + (x,)`` iff it contains both ``a`` and ``(x,)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)


@register_algorithm
class Apriori(FrequentItemsetMiner):
    """Levelwise mining with gid-list intersection."""

    name = "apriori"

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts: ItemsetCounts = {}

        singleton_lists = self.item_gid_lists(groups)
        gid_lists: Dict[Tuple[int, ...], Set[int]] = {}
        for item, gids in singleton_lists.items():
            if len(gids) >= min_count:
                key = (item,)
                gid_lists[key] = gids
                counts[frozenset(key)] = len(gids)

        current = gid_lists
        while current:
            candidates = self.join_candidates(current.keys())
            next_level: Dict[Tuple[int, ...], Set[int]] = {}
            for candidate in candidates:
                left = current[candidate[:-1]]
                right = current[candidate[:-2] + candidate[-1:]]
                support_gids = left & right
                if len(support_gids) >= min_count:
                    next_level[candidate] = support_gids
                    counts[frozenset(candidate)] = len(support_gids)
            current = next_level
        return counts
