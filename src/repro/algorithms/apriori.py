"""Apriori with group-id lists.

This is the algorithm sketched in Section 4.3.1 of the paper:

    "The algorithm incrementally builds the so-called large itemsets
    [...] moving up from singleton itemsets to itemsets of generic
    cardinality by adding one new item to already computed large
    itemsets.  [...] Support of an itemset is evaluated by counting
    elements in an associated list that contains identifiers of groups
    in which the itemset is present; the list is computed when the new
    itemset is generated."

Candidate generation and subset pruning follow Agrawal & Srikant
(VLDB 1994); support counting intersects the parents' group-id lists
instead of rescanning the data, which is exact because a group contains
``a + (x,)`` iff it contains both ``a`` and ``(x,)``.

The gid lists carry no semantics beyond membership, so their physical
layout is free: the default ``"bitset"`` representation packs them
into big-int bitmaps (:mod:`repro.algorithms.bitset`) where the
intersection is ``&`` and the count is :meth:`int.bit_count`; the
original ``"set"`` representation remains selectable for differential
testing and the ablation bench.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)
from repro.algorithms.bitset import (
    BitsetStats,
    SlotUniverse,
    packed_item_bitmaps,
    packed_kernels_enabled,
    validate_representation,
)


@register_algorithm
class Apriori(FrequentItemsetMiner):
    """Levelwise mining with gid-list intersection."""

    name = "apriori"

    def __init__(self, representation: str = "bitset"):
        self.representation = validate_representation(representation)
        #: observability: bitmap counters of the last run
        self.stats = BitsetStats()

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.stats.clear()
        if self.representation == "set":
            return self._mine_sets(groups, min_count)
        return self._mine_bitsets(groups, min_count)

    # -- bitset path (default) ----------------------------------------------

    def _mine_bitsets(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        counts: ItemsetCounts = {}
        universe = SlotUniverse(groups)
        popcounts = 0
        intersections = 0

        # "packed" swaps the bitmap layout (word arrays with in-place
        # construction and numpy kernels) while keeping the identical
        # levelwise loop below: both layouts intersect with ``&`` and
        # count with ``bit_count``.  Small universes keep big ints —
        # see bitset.packed_kernels_enabled.
        if self.representation == "packed" and packed_kernels_enabled(
            len(universe)
        ):
            singleton_maps = packed_item_bitmaps(groups.items(), universe)
        else:
            singleton_maps = self.item_gid_bitmaps(groups, universe)
        self.stats.sample_density(singleton_maps.values(), len(universe))
        gid_maps: Dict[Tuple[int, ...], int] = {}
        for item, bitmap in singleton_maps.items():
            support = bitmap.bit_count()
            popcounts += 1
            if support >= min_count:
                key = (item,)
                gid_maps[key] = bitmap
                counts[frozenset(key)] = support
        self.stats.passes += 1
        self.stats.candidates += len(singleton_maps)

        current = gid_maps
        while current:
            candidates = self.join_candidates(current.keys())
            self.stats.passes += 1
            self.stats.candidates += len(candidates)
            next_level: Dict[Tuple[int, ...], int] = {}
            for candidate in candidates:
                left = current[candidate[:-1]]
                right = current[candidate[:-2] + candidate[-1:]]
                support_map = left & right
                support = support_map.bit_count()
                intersections += 1
                popcounts += 1
                if support >= min_count:
                    next_level[candidate] = support_map
                    counts[frozenset(candidate)] = support
            current = next_level

        self.stats.universe_sizes["gid"] = len(universe)
        self.stats.popcount_calls = popcounts
        self.stats.intersections = intersections
        return counts

    # -- set path (differential / ablation) ---------------------------------

    def _mine_sets(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        counts: ItemsetCounts = {}

        singleton_lists = self.item_gid_lists(groups)
        gid_lists: Dict[Tuple[int, ...], Set[int]] = {}
        for item, gids in singleton_lists.items():
            if len(gids) >= min_count:
                key = (item,)
                gid_lists[key] = gids
                counts[frozenset(key)] = len(gids)
        self.stats.passes += 1
        self.stats.candidates += len(singleton_lists)

        current = gid_lists
        while current:
            candidates = self.join_candidates(current.keys())
            self.stats.passes += 1
            self.stats.candidates += len(candidates)
            next_level: Dict[Tuple[int, ...], Set[int]] = {}
            for candidate in candidates:
                left = current[candidate[:-1]]
                right = current[candidate[:-2] + candidate[-1:]]
                support_gids = left & right
                if len(support_gids) >= min_count:
                    next_level[candidate] = support_gids
                    counts[frozenset(candidate)] = len(support_gids)
            current = next_level
        return counts
