"""Packed big-int bitmaps: the vertical mining representation.

The pool algorithms and the general core operator spend nearly all of
their time intersecting sets of identifiers — group ids for the
gid-list algorithms of Section 4.3.1, ``(group, body cluster, head
cluster)`` triples for the rule lattice of Section 4.3.2.  Python
integers are arbitrary-precision bit arrays whose bitwise operators
run in C over whole machine words, so after densely re-indexing the
identifiers into contiguous bit slots, set intersection becomes ``&``
and support counting becomes :meth:`int.bit_count` — typically an
order of magnitude faster than hashing tuples into ``set`` objects.

The representation stays entirely behind the paper's encoding
borderline: algorithms still see only identifiers, the bitmaps are a
private physical layout.  Every consumer keeps a set-based path
selectable (``representation="set"``) for differential testing and the
ablation bench.

A third layout, ``"packed"``, stores the same bitmaps as explicit
64-bit word arrays (:class:`PackedBitset`, ``array('Q')``).  Big ints
are immutable, so building one incrementally (``mask |= 1 << slot``)
copies the whole integer per bit — quadratic in the universe size —
while the word array sets bits in place.  The word layout also pickles
cheaply (one buffer copy, no big-int serialization), which is what the
sharded executor (:mod:`repro.parallel`) ships between processes.  The
AND/popcount kernels run over numpy ``uint64`` views when numpy is
available and fall back to a chunked per-word loop
(:meth:`int.bit_count` per word) otherwise; because the per-operation
overhead of the word kernels only amortizes on large universes,
consumers consult :func:`packed_kernels_enabled` and keep the big-int
masks for small ones.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

try:  # numpy accelerates the packed kernels; it is optional
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

#: per-word popcount ufunc (numpy >= 2.0); None falls back to python
_BITWISE_COUNT = getattr(_np, "bitwise_count", None) if _np is not None else None

#: the physical layouts a consumer can select
REPRESENTATIONS = ("bitset", "packed", "set")

#: bits per packed word (``array('Q')`` items)
WORD_BITS = 64

#: smallest universe (in slots) for which the packed word kernels beat
#: the big-int operators; below it ``"packed"`` consumers keep big-int
#: masks (the layouts are interchangeable bit for bit).  Measured on
#: the Apriori gid-list workload: per-call numpy overhead loses to
#: big-int ``&``/``bit_count`` until the mid-tens-of-thousands of
#: slots, where linear word-array construction starts to dominate the
#: big-int operators' quadratic shift-and-or build.  Tests may
#: monkeypatch this to force the word kernels onto tiny inputs.
PACKED_MIN_SLOTS = 48_000


def set_packed_min_slots(slots: int) -> int:
    """Override the packed-kernel crossover (CLI ``--packed-min-slots``,
    :class:`~repro.system.MiningSystem` tuning) instead of editing the
    module constant.  Returns the previous value so callers can restore
    it."""
    global PACKED_MIN_SLOTS
    if slots < 0:
        raise ValueError(f"packed_min_slots must be >= 0, got {slots}")
    previous = PACKED_MIN_SLOTS
    PACKED_MIN_SLOTS = int(slots)
    return previous


def packed_kernels_enabled(slots: int) -> bool:
    """True when the packed word kernels should carry a universe of
    *slots* slots: numpy must be importable (the pure-python per-word
    fallback is correct but slower than big ints everywhere) and the
    universe large enough to amortize the per-operation overhead."""
    return _BITWISE_COUNT is not None and slots >= PACKED_MIN_SLOTS


def validate_representation(representation: str) -> str:
    if representation not in REPRESENTATIONS:
        raise ValueError(
            f"unknown representation {representation!r}; "
            f"choose from {REPRESENTATIONS}"
        )
    return representation


@dataclass
class BitsetStats:
    """Counters of the vertical representation (observability).

    ``universe_sizes`` maps a universe label (e.g. ``"gid"``,
    ``"triple"``) to the number of slots interned; ``popcount_calls``
    counts support evaluations (``bit_count`` or distinct-group
    scans); ``intersections`` counts bitmap ``&`` operations on the
    measured hot paths.  ``passes`` counts levelwise (or recursive)
    rounds over the lattice, ``candidates`` the itemsets generated for
    support evaluation.  ``bits_set``/``bits_possible`` sample bitmap
    occupancy at construction — their ratio (:meth:`density`) tells the
    bench whether the workload favors the packed layout.
    """

    universe_sizes: Dict[str, int] = None  # type: ignore[assignment]
    popcount_calls: int = 0
    intersections: int = 0
    passes: int = 0
    candidates: int = 0
    bits_set: int = 0
    bits_possible: int = 0

    def __post_init__(self) -> None:
        if self.universe_sizes is None:
            self.universe_sizes = {}

    def merge(self, other: "BitsetStats") -> None:
        for label, size in other.universe_sizes.items():
            self.universe_sizes[label] = max(
                self.universe_sizes.get(label, 0), size
            )
        self.popcount_calls += other.popcount_calls
        self.intersections += other.intersections
        self.passes += other.passes
        self.candidates += other.candidates
        self.bits_set += other.bits_set
        self.bits_possible += other.bits_possible

    def clear(self) -> None:
        self.universe_sizes = {}
        self.popcount_calls = 0
        self.intersections = 0
        self.passes = 0
        self.candidates = 0
        self.bits_set = 0
        self.bits_possible = 0

    def sample_density(self, bitmaps: "Iterable[int]", universe_size: int) -> None:
        """Accumulate occupancy of freshly built *bitmaps* over a
        universe of *universe_size* slots."""
        n = 0
        for bitmap in bitmaps:
            self.bits_set += bitmap.bit_count()
            n += 1
        self.bits_possible += n * universe_size

    def density(self) -> float:
        """Fraction of set bits among the sampled bitmaps (0.0 when
        nothing was sampled, e.g. the ``"set"`` representation)."""
        if not self.bits_possible:
            return 0.0
        return self.bits_set / self.bits_possible


class SlotUniverse:
    """Dense re-indexing of hashable identifiers into bit slots.

    Slots are assigned in first-appearance order, so building the
    universe from a deterministic iteration yields a deterministic
    layout (and therefore deterministic masks).
    """

    __slots__ = ("_slot_of", "_members")

    def __init__(self, idents: Iterable[Hashable] = ()) -> None:
        self._slot_of: Dict[Hashable, int] = {}
        self._members: List[Hashable] = []
        for ident in idents:
            self.slot(ident)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, ident: Hashable) -> bool:
        return ident in self._slot_of

    def slot(self, ident: Hashable) -> int:
        """The slot of *ident*, assigned on first use."""
        slot = self._slot_of.get(ident)
        if slot is None:
            slot = len(self._members)
            self._slot_of[ident] = slot
            self._members.append(ident)
        return slot

    def mask(self, idents: Iterable[Hashable]) -> int:
        """The bitmap with the slots of *idents* set."""
        mask = 0
        slot = self.slot
        for ident in idents:
            mask |= 1 << slot(ident)
        return mask

    def members(self, mask: int) -> List[Hashable]:
        """Decode a bitmap back into identifiers, in slot order."""
        members = self._members
        return [members[index] for index in iter_slots(mask)]


class GroupedUniverse:
    """A dense slot universe over keyed identifiers — tuples whose
    first element is a *group key* — laid out contiguously per group
    with one always-zero *guard* bit above each group's span.

    The guard bits turn distinct-group counting into three big-int
    operations and one popcount (the triple-slot -> group-slot
    masking): with ``L`` holding a bit at every group's base slot and
    ``H`` a bit at every group's guard slot,

        ``((mask | H) - L) & H``

    keeps a group's guard bit set iff the group contributed at least
    one slot to *mask*.  Subtracting the base bit borrows all the way
    up through the group's span exactly when the span is empty
    (clearing the guard bit), and since ``mask | H`` sets every guard
    bit, the borrow never crosses into the next group.  The whole
    count runs in C over machine words — no per-bit walk.

    Callers must intern identifiers grouped by key (the loaders
    iterate per group, and the elementary-rule table is sorted first);
    interleaving keys raises.
    """

    __slots__ = ("_slot_of", "_base_of", "_bases", "_last_key", "_next",
                 "_anchor_low", "_anchor_high", "_anchor_size",
                 "group_count_calls")

    def __init__(self, idents: Iterable[Tuple] = ()) -> None:
        self._slot_of: Dict[Tuple, int] = {}
        #: group key -> base slot of the group's span
        self._base_of: Dict[Hashable, int] = {}
        #: base slots in interning order (ascending)
        self._bases: List[int] = []
        self._last_key: Hashable = _NO_KEY
        #: next unassigned slot
        self._next = 0
        self._anchor_low = 0
        self._anchor_high = 0
        self._anchor_size = -1  # len() when the anchors were built
        #: observability: distinct-group counts performed
        self.group_count_calls = 0
        for ident in idents:
            self.slot(ident)

    def __len__(self) -> int:
        return len(self._slot_of)

    def slot(self, ident: Tuple) -> int:
        slot = self._slot_of.get(ident)
        if slot is None:
            key = ident[0]
            if key != self._last_key:
                if key in self._base_of:
                    raise ValueError(
                        f"group key {key!r} interned non-contiguously; "
                        "intern identifiers grouped by key"
                    )
                if self._bases:
                    self._next += 1  # previous group's guard bit
                self._base_of[key] = self._next
                self._bases.append(self._next)
                self._last_key = key
            slot = self._next
            self._slot_of[ident] = slot
            self._next = slot + 1
        return slot

    def mask(self, idents: Iterable[Tuple]) -> int:
        mask = 0
        slot = self.slot
        for ident in idents:
            mask |= 1 << slot(ident)
        return mask

    def _anchors(self) -> Tuple[int, int]:
        """The (base, guard) anchor bitmaps, rebuilt lazily after the
        universe grew.  Group *i*'s guard slot sits just below group
        *i+1*'s base; the still-open last group's guard is the next
        unassigned slot."""
        if self._anchor_size != len(self._slot_of):
            bases = self._bases
            low = 0
            for base in bases:
                low |= 1 << base
            high = 1 << self._next
            for next_base in bases[1:]:
                high |= 1 << (next_base - 1)
            self._anchor_low = low
            self._anchor_high = high
            self._anchor_size = len(self._slot_of)
        return self._anchor_low, self._anchor_high

    def group_count(self, mask: int) -> int:
        """Number of distinct group keys among the set slots of
        *mask* — mask-and-popcount, exact, O(universe words)."""
        self.group_count_calls += 1
        if not mask:
            return 0
        low, high = self._anchors()
        return (((mask | high) - low) & high).bit_count()


class _NoKey:
    """Sentinel distinct from any group key (including None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<no key>"


_NO_KEY = _NoKey()


def iter_slots(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def item_bitmaps(
    groups: "Iterable[Tuple[Hashable, Iterable[Hashable]]]",
    universe: SlotUniverse,
) -> Dict[Hashable, int]:
    """Invert ``(gid, items)`` pairs into item -> gid-bitmap."""
    bitmaps: Dict[Hashable, int] = {}
    get = bitmaps.get
    for gid, items in groups:
        bit = 1 << universe.slot(gid)
        for item in items:
            bitmaps[item] = get(item, 0) | bit
    return bitmaps


class PackedBitset:
    """A fixed-width bitmap stored as packed 64-bit words.

    Same semantics as a big-int mask over the same slot universe —
    ``a & b`` intersects, :meth:`bit_count` is the support popcount,
    truthiness means "any bit set" — but the storage is a mutable
    ``array('Q')``: setting a slot updates one word in place instead of
    copying the whole integer, and pickling ships the raw buffer.

    Operands of ``&``/``|``/``==`` must come from the same universe
    (equal word width); mixing widths raises ``ValueError``.  Kernels
    use numpy ``uint64`` views when numpy is importable and a chunked
    per-word loop (``int.bit_count`` per word) otherwise — both produce
    identical bits.
    """

    __slots__ = ("words",)

    def __init__(self, words: array) -> None:
        self.words = words

    # -- construction --------------------------------------------------

    @classmethod
    def zeros(cls, slots: int) -> "PackedBitset":
        """An all-zero bitmap wide enough for *slots* slots."""
        nwords = max((slots + WORD_BITS - 1) // WORD_BITS, 1)
        return cls(array("Q", bytes(8 * nwords)))

    @classmethod
    def from_slots(cls, slots: Iterable[int], width: int) -> "PackedBitset":
        out = cls.zeros(width)
        for slot in slots:
            out.set_slot(slot)
        return out

    @classmethod
    def from_int(cls, value: int, width: int) -> "PackedBitset":
        """Pack a big-int mask into the word layout (*width* slots)."""
        if value < 0:
            raise ValueError("packed bitmaps are unsigned")
        nwords = max((width + WORD_BITS - 1) // WORD_BITS, 1)
        if value.bit_length() > nwords * WORD_BITS:
            raise ValueError(
                f"mask of {value.bit_length()} bits exceeds the "
                f"{width}-slot universe"
            )
        return cls(array("Q", value.to_bytes(8 * nwords, "little")))

    def set_slot(self, slot: int) -> None:
        """Set one bit in place (no whole-bitmap copy)."""
        self.words[slot >> 6] |= 1 << (slot & 63)

    # -- kernels -------------------------------------------------------

    def _check_width(self, other: "PackedBitset") -> None:
        if len(self.words) != len(other.words):
            raise ValueError(
                f"width mismatch: {len(self.words)} vs "
                f"{len(other.words)} words"
            )

    def __and__(self, other: "PackedBitset") -> "PackedBitset":
        self._check_width(other)
        if _np is not None:
            left = _np.frombuffer(self.words, dtype=_np.uint64)
            right = _np.frombuffer(other.words, dtype=_np.uint64)
            return PackedBitset(array("Q", (left & right).tobytes()))
        return PackedBitset(
            array("Q", (a & b for a, b in zip(self.words, other.words)))
        )

    def __or__(self, other: "PackedBitset") -> "PackedBitset":
        self._check_width(other)
        if _np is not None:
            left = _np.frombuffer(self.words, dtype=_np.uint64)
            right = _np.frombuffer(other.words, dtype=_np.uint64)
            return PackedBitset(array("Q", (left | right).tobytes()))
        return PackedBitset(
            array("Q", (a | b for a, b in zip(self.words, other.words)))
        )

    def bit_count(self) -> int:
        """Total set bits (the support popcount)."""
        if _BITWISE_COUNT is not None:
            view = _np.frombuffer(self.words, dtype=_np.uint64)
            return int(_BITWISE_COUNT(view).sum())
        return sum(word.bit_count() for word in self.words)

    def and_count(self, other: "PackedBitset") -> int:
        """``(self & other).bit_count()`` without materializing the
        intermediate bitmap on the python side."""
        self._check_width(other)
        if _BITWISE_COUNT is not None:
            left = _np.frombuffer(self.words, dtype=_np.uint64)
            right = _np.frombuffer(other.words, dtype=_np.uint64)
            return int(_BITWISE_COUNT(left & right).sum())
        return sum(
            (a & b).bit_count() for a, b in zip(self.words, other.words)
        )

    def __bool__(self) -> bool:
        if _np is not None:
            return bool(_np.frombuffer(self.words, dtype=_np.uint64).any())
        return any(self.words)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PackedBitset):
            return self.words == other.words
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - not used as keys
        return hash(self.words.tobytes())

    # -- decoding ------------------------------------------------------

    def to_int(self) -> int:
        """The equivalent big-int mask (differential testing)."""
        return int.from_bytes(self.words.tobytes(), "little")

    def iter_slots(self) -> Iterator[int]:
        """Yield the set slot positions, ascending."""
        for index, word in enumerate(self.words):
            base = index << 6
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedBitset({len(self.words)} words, "
            f"{self.bit_count()} bits set)"
        )


def packed_item_bitmaps(
    groups: "Iterable[Tuple[Hashable, Iterable[Hashable]]]",
    universe: SlotUniverse,
) -> Dict[Hashable, PackedBitset]:
    """Invert ``(gid, items)`` pairs into item -> packed gid-bitmap.

    The word counterpart of :func:`item_bitmaps`.  *universe* must be
    fully interned (width fixed up front); each occurrence updates one
    word in place, so construction is linear in the number of
    occurrences rather than quadratic like the big-int ``|=`` loop.
    """
    width = len(universe)
    nwords = max((width + WORD_BITS - 1) // WORD_BITS, 1)
    bitmaps: Dict[Hashable, PackedBitset] = {}
    get = bitmaps.get
    for gid, items in groups:
        slot = universe.slot(gid)
        word, bit = slot >> 6, 1 << (slot & 63)
        for item in items:
            packed = get(item)
            if packed is None:
                packed = PackedBitset(array("Q", bytes(8 * nwords)))
                bitmaps[item] = packed
            packed.words[word] |= bit
    return bitmaps
