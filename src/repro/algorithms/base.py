"""Common interface and registry for the mining-algorithm pool.

The interface deliberately mirrors the paper's encoding borderline: an
algorithm sees only *group identifiers* and *item identifiers* (the
``Gid``/``Bid`` columns of the ``CodedSource`` table), never the source
data.  This is what makes the pool interchangeable ("algorithms are
completely hidden to the rest of the system", Section 3).
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple, Type

from repro.algorithms.bitset import SlotUniverse, item_bitmaps

#: encoded input: group id -> set of item ids present in the group
GroupMap = Mapping[int, FrozenSet[int]]

#: result: itemset -> number of groups containing it (only itemsets with
#: count >= the threshold are present)
ItemsetCounts = Dict[FrozenSet[int], int]


class FrequentItemsetMiner(abc.ABC):
    """A frequent ("large") itemset mining algorithm.

    Subclasses must be deterministic: given the same input they return
    the same counts (randomized algorithms take an explicit seed).
    """

    #: registry key; subclasses override
    name: str = ""

    @abc.abstractmethod
    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        """Return every itemset contained in at least ``min_count``
        groups, mapped to its exact group count.

        ``min_count`` must be at least 1; an itemset's count is the
        number of *groups* (not tuples) containing all of its items,
        matching the support semantics of the MINE RULE operator.
        """

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def item_gid_lists(groups: GroupMap) -> Dict[int, Set[int]]:
        """Invert the group map: item id -> set of group ids.

        This is the "associated list that contains identifiers of
        groups in which the itemset is present" of Section 4.3.1,
        for singleton itemsets.  (Set-based path; the default bitset
        path uses :meth:`item_gid_bitmaps`.)
        """
        lists: Dict[int, Set[int]] = {}
        for gid, items in groups.items():
            for item in items:
                lists.setdefault(item, set()).add(gid)
        return lists

    @staticmethod
    def item_gid_bitmaps(
        groups: GroupMap, universe: "SlotUniverse"
    ) -> Dict[int, int]:
        """Invert the group map into packed gid bitmaps: item id ->
        big-int bitmap over *universe* slots.

        The vertical counterpart of :meth:`item_gid_lists`: itemset
        support lists become ``&`` of bitmaps, support counts become
        :meth:`int.bit_count`.
        """
        return item_bitmaps(groups.items(), universe)

    @staticmethod
    def join_candidates(
        frequent: Iterable[Tuple[int, ...]],
    ) -> List[Tuple[int, ...]]:
        """Apriori candidate generation: join k-itemsets sharing a
        (k-1)-prefix, then prune candidates with an infrequent
        k-subset.  Itemsets are sorted tuples."""
        frequent = sorted(frequent)
        frequent_set = set(frequent)
        candidates: List[Tuple[int, ...]] = []
        by_prefix: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        for itemset in frequent:
            by_prefix.setdefault(itemset[:-1], []).append(itemset)
        for siblings in by_prefix.values():
            for a, b in itertools.combinations(siblings, 2):
                candidate = a + (b[-1],) if a[-1] < b[-1] else b + (a[-1],)
                if FrequentItemsetMiner._all_subsets_frequent(
                    candidate, frequent_set
                ):
                    candidates.append(candidate)
        return candidates

    @staticmethod
    def _all_subsets_frequent(
        candidate: Tuple[int, ...], frequent: Set[Tuple[int, ...]]
    ) -> bool:
        for drop in range(len(candidate)):
            subset = candidate[:drop] + candidate[drop + 1 :]
            if subset not in frequent:
                return False
        return True


#: name -> class registry of available algorithms
ALGORITHMS: Dict[str, Type[FrequentItemsetMiner]] = {}


def register_algorithm(cls: Type[FrequentItemsetMiner]) -> Type[FrequentItemsetMiner]:
    """Class decorator adding an algorithm to the pool."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a registry name")
    ALGORITHMS[cls.name] = cls
    return cls


def get_algorithm(name: str, **kwargs) -> FrequentItemsetMiner:
    """Instantiate a pool algorithm by name.

    Raises :class:`KeyError` with the available names on a miss.
    """
    try:
        cls = ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown mining algorithm {name!r}; "
            f"available: {', '.join(sorted(ALGORITHMS))}"
        ) from None
    return cls(**kwargs)
