"""Partition (Savasere, Omiecinski & Navathe, VLDB 1995).

The group set is split into ``partitions`` roughly equal slices.  Any
globally frequent itemset must be *locally* frequent (with a
proportionally scaled threshold) in at least one slice, so the union of
the local results is a complete candidate set; a second pass counts the
candidates exactly over the whole input.  The original algorithm was
designed to need at most two disk scans — here the two scans survive as
two passes over the group map.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Set

from repro.algorithms.apriori import Apriori
from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)


@register_algorithm
class Partition(FrequentItemsetMiner):
    """Two-pass partitioned mining."""

    name = "partition"

    def __init__(self, partitions: int = 4):
        if partitions < 1:
            raise ValueError(f"partitions must be positive, got {partitions}")
        self.partitions = partitions

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        if not groups:
            return {}
        total = len(groups)
        min_fraction = min_count / total

        # Phase 1: local large itemsets per partition (deterministic
        # slicing in sorted-gid order).
        gids = sorted(groups)
        slices = max(1, min(self.partitions, total))
        size = math.ceil(total / slices)
        local = Apriori()
        candidates: Set[FrozenSet[int]] = set()
        for start in range(0, total, size):
            part_gids = gids[start : start + size]
            part = {gid: groups[gid] for gid in part_gids}
            # local threshold: ceil preserves "at least the same
            # fraction of groups" (never misses a global winner).
            local_min = max(1, math.ceil(min_fraction * len(part) - 1e-9))
            candidates.update(local.mine(part, local_min).keys())

        # Phase 2: exact global counts for the candidate union.
        counts: Dict[FrozenSet[int], int] = {c: 0 for c in candidates}
        for items in groups.values():
            for candidate in candidates:
                if candidate <= items:
                    counts[candidate] += 1
        return {
            candidate: count
            for candidate, count in counts.items()
            if count >= min_count
        }
