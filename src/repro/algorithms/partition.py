"""Partition (Savasere, Omiecinski & Navathe, VLDB 1995).

The group set is split into ``partitions`` roughly equal slices.  Any
globally frequent itemset must be *locally* frequent (with a
proportionally scaled threshold) in at least one slice, so the union of
the local results is a complete candidate set; a second pass counts the
candidates exactly over the whole input.  The original algorithm was
designed to need at most two disk scans — here the two scans survive as
two passes over the group map.

On the default ``"bitset"`` representation the second pass is
vertical: each item's gid bitmap is built once, and a candidate's
exact count is the popcount of the AND of its items' bitmaps — no
subset test per (group, candidate) pair.  ``"set"`` keeps the original
horizontal rescan for differential testing.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Set

from repro.algorithms.apriori import Apriori
from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)
from repro.algorithms.bitset import (
    BitsetStats,
    SlotUniverse,
    packed_item_bitmaps,
    packed_kernels_enabled,
    validate_representation,
)


@register_algorithm
class Partition(FrequentItemsetMiner):
    """Two-pass partitioned mining."""

    name = "partition"

    def __init__(self, partitions: int = 4, representation: str = "bitset"):
        if partitions < 1:
            raise ValueError(f"partitions must be positive, got {partitions}")
        self.partitions = partitions
        self.representation = validate_representation(representation)
        #: observability: bitmap counters of the last run
        self.stats = BitsetStats()

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.stats.clear()
        if not groups:
            return {}
        total = len(groups)
        min_fraction = min_count / total

        # Phase 1: local large itemsets per partition (deterministic
        # slicing in sorted-gid order).
        gids = sorted(groups)
        slices = max(1, min(self.partitions, total))
        size = math.ceil(total / slices)
        local = Apriori(representation=self.representation)
        candidates: Set[FrozenSet[int]] = set()
        for start in range(0, total, size):
            part_gids = gids[start : start + size]
            part = {gid: groups[gid] for gid in part_gids}
            # local threshold: ceil preserves "at least the same
            # fraction of groups" (never misses a global winner).
            local_min = max(1, math.ceil(min_fraction * len(part) - 1e-9))
            candidates.update(local.mine(part, local_min).keys())
            self.stats.merge(local.stats)

        # Phase 2: exact global counts for the candidate union.
        if self.representation == "set":
            counts: Dict[FrozenSet[int], int] = {c: 0 for c in candidates}
            for items in groups.values():
                for candidate in candidates:
                    if candidate <= items:
                        counts[candidate] += 1
            return {
                candidate: count
                for candidate, count in counts.items()
                if count >= min_count
            }
        return self._count_candidates(groups, candidates, min_count)

    def _count_candidates(
        self,
        groups: GroupMap,
        candidates: Set[FrozenSet[int]],
        min_count: int,
    ) -> ItemsetCounts:
        """Vertical exact counting: AND the items' gid bitmaps."""
        universe = SlotUniverse(groups)
        if self.representation == "packed" and packed_kernels_enabled(
            len(universe)
        ):
            item_maps = packed_item_bitmaps(groups.items(), universe)
        else:
            item_maps = self.item_gid_bitmaps(groups, universe)
        self.stats.universe_sizes["gid"] = len(universe)
        out: ItemsetCounts = {}
        for candidate in candidates:
            # mask=None until the first item's bitmap: works for both
            # big-int and packed layouts (no all-ones sentinel needed).
            mask = None
            missing = False
            for item in candidate:
                bitmap = item_maps.get(item)
                if bitmap is None:
                    missing = True
                    break
                mask = bitmap if mask is None else mask & bitmap
                self.stats.intersections += 1
                if not mask:
                    break
            count = 0 if missing or mask is None else mask.bit_count()
            self.stats.popcount_calls += 1
            if count >= min_count:
                out[candidate] = count
        return out
