"""AprioriTid (Agrawal & Srikant, VLDB 1994).

Instead of rescanning the groups on every pass, the database is
re-encoded after each level: pass ``k`` represents every group by the
set of level-``k`` candidate itemsets it contains (the :math:`\\bar
C_k` structure of the original paper).  Groups containing no candidate
drop out, so later passes scan progressively less data — the property
that made AprioriTid attractive for the late iterations.

The default ``"bitset"`` representation packs each group's
candidate-id set into a big-int bitmap over the level's candidate
slots: membership of a candidate's two generating subsets is one
mask-and-compare instead of two dict probes, and the re-encoded
database shrinks to one integer per surviving group.  The original
``"set"`` layout stays selectable for differential testing.
(``"packed"`` is accepted and aliases the bitset path: the per-group
candidate masks here span at most a few hundred slots, below the word
kernels' break-even point.)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)
from repro.algorithms.bitset import BitsetStats, validate_representation


@register_algorithm
class AprioriTid(FrequentItemsetMiner):
    """Levelwise mining over the candidate-id re-encoding."""

    name = "aprioritid"

    def __init__(self, representation: str = "bitset"):
        self.representation = validate_representation(representation)
        #: observability: bitmap counters of the last run
        self.stats = BitsetStats()

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        self.stats.clear()
        if self.representation == "set":
            return self._mine_sets(groups, min_count)
        return self._mine_bitsets(groups, min_count)

    # -- bitset path (default) ----------------------------------------------

    def _mine_bitsets(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        counts: ItemsetCounts = {}

        # Pass 1: count singletons directly.
        item_counts: Dict[int, int] = {}
        for items in groups.values():
            for item in items:
                item_counts[item] = item_counts.get(item, 0) + 1
        frequent1 = sorted(
            (item,) for item, count in item_counts.items()
            if count >= min_count
        )
        for itemset in frequent1:
            counts[frozenset(itemset)] = item_counts[itemset[0]]
        self.stats.passes += 1
        self.stats.candidates += len(item_counts)

        # \bar C_1 packed: group -> bitmap over the frequent singleton
        # slots (slot order = ascending item id, deterministic).
        slot_of: Dict[Tuple[int, ...], int] = {
            candidate: index for index, candidate in enumerate(frequent1)
        }
        max_slots = len(frequent1)
        encoded: Dict[int, int] = {}
        for gid, items in groups.items():
            present = 0
            for item in items:
                slot = slot_of.get((item,))
                if slot is not None:
                    present |= 1 << slot
            if present:
                encoded[gid] = present

        self.stats.sample_density(encoded.values(), len(frequent1))

        frequent: List[Tuple[int, ...]] = frequent1
        while frequent:
            candidates = sorted(self.join_candidates(frequent))
            if not candidates:
                break
            self.stats.passes += 1
            self.stats.candidates += len(candidates)
            # For each candidate, the mask of its two generating
            # (k-1)-subsets in the previous level's slot layout.
            generator_masks = [
                (1 << slot_of[candidate[:-1]])
                | (1 << slot_of[candidate[:-2] + candidate[-1:]])
                for candidate in candidates
            ]
            candidate_counts = [0] * len(candidates)
            next_encoded: Dict[int, int] = {}
            for gid, present in encoded.items():
                found = 0
                for index, mask in enumerate(generator_masks):
                    if present & mask == mask:
                        found |= 1 << index
                        candidate_counts[index] += 1
                if found:
                    next_encoded[gid] = found
            frequent = []
            for index, count in enumerate(candidate_counts):
                if count >= min_count:
                    candidate = candidates[index]
                    frequent.append(candidate)
                    counts[frozenset(candidate)] = count
            slot_of = {
                candidate: index for index, candidate in enumerate(candidates)
            }
            max_slots = max(max_slots, len(candidates))
            encoded = next_encoded

        self.stats.universe_sizes["candidate"] = max_slots
        return counts

    # -- set path (differential / ablation) ---------------------------------

    def _mine_sets(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        counts: ItemsetCounts = {}

        # Pass 1: count singletons directly.
        item_counts: Dict[int, int] = {}
        for items in groups.values():
            for item in items:
                item_counts[item] = item_counts.get(item, 0) + 1
        frequent1 = [
            (item,) for item, count in item_counts.items() if count >= min_count
        ]
        for itemset in frequent1:
            counts[frozenset(itemset)] = item_counts[itemset[0]]
        self.stats.passes += 1
        self.stats.candidates += len(item_counts)

        # \bar C_1: group -> set of frequent singleton candidates present.
        frequent1_set = {t[0] for t in frequent1}
        encoded: Dict[int, Dict[Tuple[int, ...], None]] = {}
        for gid, items in groups.items():
            present = {(item,): None for item in items if item in frequent1_set}
            if present:
                encoded[gid] = present

        frequent = frequent1
        while frequent:
            candidates = self.join_candidates(frequent)
            if not candidates:
                break
            self.stats.passes += 1
            self.stats.candidates += len(candidates)
            # Index candidates by their two generating (k-1)-subsets.
            generators: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], ...]] = {}
            for candidate in candidates:
                first = candidate[:-1]
                second = candidate[:-2] + candidate[-1:]
                generators[candidate] = (first, second)

            candidate_counts: Dict[Tuple[int, ...], int] = {}
            next_encoded: Dict[int, Dict[Tuple[int, ...], None]] = {}
            for gid, present in encoded.items():
                found: Dict[Tuple[int, ...], None] = {}
                for candidate, (first, second) in generators.items():
                    if first in present and second in present:
                        found[candidate] = None
                        candidate_counts[candidate] = (
                            candidate_counts.get(candidate, 0) + 1
                        )
                if found:
                    next_encoded[gid] = found
            frequent = [
                candidate
                for candidate, count in candidate_counts.items()
                if count >= min_count
            ]
            for candidate in frequent:
                counts[frozenset(candidate)] = candidate_counts[candidate]
            encoded = next_encoded
        return counts
