"""AprioriTid (Agrawal & Srikant, VLDB 1994).

Instead of rescanning the groups on every pass, the database is
re-encoded after each level: pass ``k`` represents every group by the
set of level-``k`` candidate itemsets it contains (the :math:`\\bar
C_k` structure of the original paper).  Groups containing no candidate
drop out, so later passes scan progressively less data — the property
that made AprioriTid attractive for the late iterations.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)


@register_algorithm
class AprioriTid(FrequentItemsetMiner):
    """Levelwise mining over the candidate-id re-encoding."""

    name = "aprioritid"

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts: ItemsetCounts = {}

        # Pass 1: count singletons directly.
        item_counts: Dict[int, int] = {}
        for items in groups.values():
            for item in items:
                item_counts[item] = item_counts.get(item, 0) + 1
        frequent1 = [
            (item,) for item, count in item_counts.items() if count >= min_count
        ]
        for itemset in frequent1:
            counts[frozenset(itemset)] = item_counts[itemset[0]]

        # \bar C_1: group -> set of frequent singleton candidates present.
        frequent1_set = {t[0] for t in frequent1}
        encoded: Dict[int, Dict[Tuple[int, ...], None]] = {}
        for gid, items in groups.items():
            present = {(item,): None for item in items if item in frequent1_set}
            if present:
                encoded[gid] = present

        frequent = frequent1
        while frequent:
            candidates = self.join_candidates(frequent)
            if not candidates:
                break
            # Index candidates by their two generating (k-1)-subsets.
            generators: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], ...]] = {}
            for candidate in candidates:
                first = candidate[:-1]
                second = candidate[:-2] + candidate[-1:]
                generators[candidate] = (first, second)

            candidate_counts: Dict[Tuple[int, ...], int] = {}
            next_encoded: Dict[int, Dict[Tuple[int, ...], None]] = {}
            for gid, present in encoded.items():
                found: Dict[Tuple[int, ...], None] = {}
                for candidate, (first, second) in generators.items():
                    if first in present and second in present:
                        found[candidate] = None
                        candidate_counts[candidate] = (
                            candidate_counts.get(candidate, 0) + 1
                        )
                if found:
                    next_encoded[gid] = found
            frequent = [
                candidate
                for candidate, count in candidate_counts.items()
                if count >= min_count
            ]
            for candidate in frequent:
                counts[frozenset(candidate)] = candidate_counts[candidate]
            encoded = next_encoded
        return counts
