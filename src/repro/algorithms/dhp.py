"""DHP — Direct Hashing and Pruning (Park, Chen & Yu, SIGMOD 1995).

While counting level-``k`` itemsets, DHP hashes every level-``k+1``
itemset occurring in the scanned groups into a small bucket table; a
candidate of the next level can only be frequent if its bucket count
reaches the threshold, so many Apriori candidates are discarded before
they are ever counted.  The second DHP idea, *transaction trimming*,
also applies: items that cannot appear in any frequent itemset of the
next level are removed from the group encoding.

The bucket table is a coarse counting filter (collisions only ever
over-estimate), so the final result is exact.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    register_algorithm,
)


@register_algorithm
class DirectHashingPruning(FrequentItemsetMiner):
    """Hash-filtered levelwise mining.

    ``buckets`` trades memory for filter precision, exactly like the
    original paper's hash-table size parameter.
    """

    name = "dhp"

    def __init__(self, buckets: int = 4096):
        if buckets < 1:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.buckets = buckets

    def mine(self, groups: GroupMap, min_count: int) -> ItemsetCounts:
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        counts: ItemsetCounts = {}

        # Pass 1: count singletons, hash pairs.
        item_counts: Dict[int, int] = {}
        bucket_counts = [0] * self.buckets
        working: Dict[int, Tuple[int, ...]] = {
            gid: tuple(sorted(items)) for gid, items in groups.items() if items
        }
        for items in working.values():
            for item in items:
                item_counts[item] = item_counts.get(item, 0) + 1
            for pair in itertools.combinations(items, 2):
                bucket_counts[self._bucket(pair)] += 1

        frequent: Set[Tuple[int, ...]] = set()
        for item, count in item_counts.items():
            if count >= min_count:
                counts[frozenset((item,))] = count
                frequent.add((item,))

        level = 2
        while frequent:
            # The bucket table built during the previous pass filters
            # this level's candidates: a bucket count below the
            # threshold proves every itemset hashing there infrequent.
            candidates = [
                candidate
                for candidate in self.join_candidates(frequent)
                if bucket_counts[self._bucket(candidate)] >= min_count
            ]
            if not candidates:
                break
            candidate_set = set(candidates)

            candidate_counts: Dict[Tuple[int, ...], int] = {}
            next_bucket_counts = [0] * self.buckets
            next_working: Dict[int, Tuple[int, ...]] = {}
            for gid, items in working.items():
                if len(items) < level:
                    continue
                matched: List[Tuple[int, ...]] = []
                for combo in itertools.combinations(items, level):
                    if combo in candidate_set:
                        matched.append(combo)
                        candidate_counts[combo] = candidate_counts.get(combo, 0) + 1
                if not matched:
                    continue
                # Transaction trimming: keep only items that occur in at
                # least `level` matched candidates -- a necessary
                # condition for membership in a (level+1)-itemset.
                occurrence: Dict[int, int] = {}
                for combo in matched:
                    for item in combo:
                        occurrence[item] = occurrence.get(item, 0) + 1
                trimmed = tuple(
                    item for item in items if occurrence.get(item, 0) >= level
                )
                if len(trimmed) > level:
                    next_working[gid] = trimmed
                    for combo in itertools.combinations(trimmed, level + 1):
                        next_bucket_counts[self._bucket(combo)] += 1

            new_frequent: Set[Tuple[int, ...]] = set()
            for candidate, count in candidate_counts.items():
                if count >= min_count:
                    counts[frozenset(candidate)] = count
                    new_frequent.add(candidate)
            frequent = new_frequent
            working = next_working
            bucket_counts = next_bucket_counts
            level += 1
        return counts

    def _bucket(self, itemset: Tuple[int, ...]) -> int:
        return hash(itemset) % self.buckets
