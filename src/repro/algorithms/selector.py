"""Automatic algorithm selection for the simple core.

Section 3: the core operator "uses directives from the translator to
decide the mining technique to apply [...] typically each of them has
better performance under specific assumptions about data and rule
distribution."  This module implements that decision as a documented,
testable heuristic over cheap statistics of the encoded input:

* tiny inputs            -> plain Apriori (setup costs dominate);
* dense groups (high average items/group relative to the threshold)
  -> DHP, whose hash filter prunes the explosive pair-candidate level;
* many groups with low density -> Partition, which bounds passes over
  the large input;
* moderately dense groups -> Eclat, whose depth-first vertical search
  over gid bitmaps avoids the levelwise candidate churn once itemsets
  grow past pairs;
* otherwise              -> Apriori with gid-lists (the default that
  wins on memory-resident data).

The heuristic never affects the *result* (the pool is exact); it only
trades running time, so the selector is safe to use by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.apriori import Apriori
from repro.algorithms.base import FrequentItemsetMiner, GroupMap
from repro.algorithms.dhp import DirectHashingPruning
from repro.algorithms.eclat import Eclat
from repro.algorithms.partition import Partition


@dataclass(frozen=True)
class InputStatistics:
    """Cheap one-pass statistics of an encoded input."""

    groups: int
    distinct_items: int
    total_entries: int

    @property
    def average_group_size(self) -> float:
        return self.total_entries / self.groups if self.groups else 0.0

    @classmethod
    def of(cls, encoded: GroupMap) -> "InputStatistics":
        items = set()
        total = 0
        for group_items in encoded.values():
            items.update(group_items)
            total += len(group_items)
        return cls(
            groups=len(encoded),
            distinct_items=len(items),
            total_entries=total,
        )


#: below this many groups, algorithm choice is irrelevant
_TINY_GROUPS = 50
#: average group size beyond which the pair level explodes
_DENSE_AVERAGE = 12.0
#: group count beyond which pass-bounding pays off on sparse data
_MANY_GROUPS = 5_000
#: average group size beyond which deep itemsets appear and the
#: depth-first vertical search (Eclat over gid bitmaps) pays off
_VERTICAL_AVERAGE = 6.0


def select_algorithm(
    statistics: InputStatistics, min_count: int
) -> FrequentItemsetMiner:
    """Pick a pool algorithm for the given input shape."""
    if statistics.groups <= _TINY_GROUPS:
        return Apriori()
    if statistics.average_group_size >= _DENSE_AVERAGE:
        return DirectHashingPruning()
    if statistics.groups >= _MANY_GROUPS:
        return Partition()
    if statistics.average_group_size >= _VERTICAL_AVERAGE:
        return Eclat()
    return Apriori()


class AutoSelect(FrequentItemsetMiner):
    """Pool member that defers to :func:`select_algorithm` per input.

    Registered as ``"auto"`` so ``MiningSystem(algorithm="auto")`` and
    the CLI's ``.algorithm auto`` both work.
    """

    name = "auto"

    def __init__(self) -> None:
        #: the concrete algorithm chosen on the last run (observability)
        self.last_choice: str = ""

    def mine(self, groups: GroupMap, min_count: int):
        chosen = select_algorithm(InputStatistics.of(groups), min_count)
        self.last_choice = chosen.name
        return chosen.mine(groups, min_count)


from repro.algorithms.base import register_algorithm  # noqa: E402

register_algorithm(AutoSelect)
