"""The pool of frequent-itemset mining algorithms.

Section 3 of the paper requires *algorithm interoperability*: "the core
operator can be constituted of a pool of mining algorithms", each
working only on encoded data (group identifiers and item identifiers),
never on the real source.  This package provides that pool:

* :class:`~repro.algorithms.apriori.Apriori` — the classic iterative
  algorithm [Agrawal et al. 1993/1994] with group-id lists, matching
  the description in Section 4.3.1;
* :class:`~repro.algorithms.aprioritid.AprioriTid` — the
  candidate-id-list variant of Apriori [Agrawal & Srikant 1994];
* :class:`~repro.algorithms.dhp.DirectHashingPruning` — the hash-based
  algorithm of Park, Chen & Yu [SIGMOD 1995];
* :class:`~repro.algorithms.partition.Partition` — the two-scan
  partitioned algorithm of Savasere, Omiecinski & Navathe [VLDB 1995];
* :class:`~repro.algorithms.sampling.ToivonenSampling` — the
  sampling + negative-border algorithm of Toivonen [VLDB 1996];
* :class:`~repro.algorithms.eclat.Eclat` — depth-first vertical mining
  over packed gid bitmaps with diffset pruning [Zaki, TKDE 2000; Zaki
  & Gouda, KDD 2003].

The gid-list algorithms run on the packed-bitset representation of
:mod:`repro.algorithms.bitset` by default (intersection is ``&``,
support counting is ``int.bit_count``); ``representation="set"``
selects the original layout for differential testing.

All algorithms return the identical, exact answer: every itemset whose
group count reaches the threshold, with its exact count (this is the
contract the property-based tests enforce).
"""

from repro.algorithms.apriori import Apriori
from repro.algorithms.aprioritid import AprioriTid
from repro.algorithms.base import (
    ALGORITHMS,
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    get_algorithm,
    register_algorithm,
)
from repro.algorithms.bitset import (
    REPRESENTATIONS,
    BitsetStats,
    GroupedUniverse,
    SlotUniverse,
)
from repro.algorithms.dhp import DirectHashingPruning
from repro.algorithms.eclat import Eclat
from repro.algorithms.exhaustive import Exhaustive
from repro.algorithms.partition import Partition
from repro.algorithms.sampling import ToivonenSampling
from repro.algorithms.selector import (
    AutoSelect,
    InputStatistics,
    select_algorithm,
)

__all__ = [
    "ALGORITHMS",
    "Apriori",
    "AprioriTid",
    "AutoSelect",
    "BitsetStats",
    "Eclat",
    "GroupedUniverse",
    "InputStatistics",
    "REPRESENTATIONS",
    "SlotUniverse",
    "select_algorithm",
    "DirectHashingPruning",
    "Exhaustive",
    "FrequentItemsetMiner",
    "GroupMap",
    "ItemsetCounts",
    "Partition",
    "ToivonenSampling",
    "get_algorithm",
    "register_algorithm",
]
