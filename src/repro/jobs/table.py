"""The in-memory job table: id allocation, lookup, transitions.

One lock serializes every read-modify-write on the table and its jobs,
which closes the classic cancel race: ``request_cancel`` and the
worker's ``queued -> running`` claim both run under it, so a job is
either cancelled before it starts (immediate ``cancelled``) or the
cancel flag is set for the running pipeline to honour — never both,
never neither.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from repro.jobs.model import (
    CANCELLED,
    QUEUED,
    RUNNING,
    TERMINAL,
    Job,
)


class JobTable:
    """Thread-safe registry of jobs, insertion-ordered, bounded.

    ``capacity`` bounds memory over a long-lived service: once
    exceeded, the oldest *terminal* jobs (and their results) are
    evicted; live jobs are never dropped.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._next_id = 1
        #: terminal jobs evicted to honour the capacity bound
        self.evicted = 0

    # -- registration ---------------------------------------------------

    def new_job(self, statement: str, kind: str) -> Job:
        """Allocate an id, create the record and register it."""
        with self._lock:
            job = Job(id=f"job-{self._next_id}", statement=statement,
                      kind=kind)
            self._next_id += 1
            self._jobs[job.id] = job
            self._evict_terminal()
            return job

    def restore(self, job: Job) -> bool:
        """Register a prefab *terminal* job rehydrated from the run
        history (service restart).  Skips duplicates, and advances the
        id counter past any ``job-N`` id so new submissions never
        collide with restored history."""
        if not job.terminal:
            raise ValueError(
                f"only terminal jobs can be restored, got {job.state!r}"
            )
        with self._lock:
            if job.id in self._jobs:
                return False
            match = re.fullmatch(r"job-(\d+)", job.id)
            if match:
                self._next_id = max(self._next_id, int(match.group(1)) + 1)
            self._jobs[job.id] = job
            self._evict_terminal()
            return True

    def _evict_terminal(self) -> None:
        while len(self._jobs) > self.capacity:
            victim = next(
                (j for j in self._jobs.values() if j.terminal), None
            )
            if victim is None:  # all live: let the table grow
                return
            del self._jobs[victim.id]
            self.evicted += 1

    # -- lookup ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self, state: Optional[str] = None) -> List[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return jobs

    def counts(self) -> Dict[str, int]:
        """{state: count} over the current table."""
        out: Dict[str, int] = {}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- transitions ----------------------------------------------------

    def transition(
        self,
        job_id: str,
        new_state: str,
        error: Optional[str] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> Job:
        """Move one job along a legal edge under the table lock."""
        with self._lock:
            job = self._require(job_id)
            job.transition(new_state)
            if error is not None:
                job.error = error
            if result is not None:
                job.result = result
            return job

    def try_start(self, job_id: str) -> Optional[Job]:
        """The worker's claim: ``queued -> running`` if still queued.

        Returns None when the job was cancelled while waiting in the
        queue (the worker just skips it)."""
        with self._lock:
            job = self._require(job_id)
            if job.state != QUEUED:
                return None
            job.transition(RUNNING)
            return job

    def request_cancel(self, job_id: str) -> Job:
        """Cancel: immediate for queued jobs, cooperative for running
        ones, a no-op for terminal ones (idempotent)."""
        with self._lock:
            job = self._require(job_id)
            if job.state == QUEUED:
                job.transition(CANCELLED)
            elif job.state == RUNNING:
                job.cancel_requested = True
            return job

    def cancel_hook(self, job_id: str) -> Callable[[], bool]:
        """The poll the running pipeline calls at stage boundaries."""
        def cancelled() -> bool:
            job = self.get(job_id)
            return job is not None and job.cancel_requested
        return cancelled

    def _require(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no such job: {job_id}")
        return job
