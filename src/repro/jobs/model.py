"""Job records and the job state machine.

States and legal transitions::

    queued ──────► running ──────► done
       │              │ ▲  └─────► failed
       │              │ └─(requeue/retry)─ queued
       └──────────────┴─────────► cancelled

``done``, ``failed`` and ``cancelled`` are terminal (sticky): their
transition sets are empty, so any attempt to leave them raises
:class:`InvalidTransition`.  The ``running → queued`` edge is the
requeue used when a worker dies mid-job and the job is handed back.
All transitions funnel through :meth:`Job.transition`, which is the
single enforcement point the property tests drive.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES: FrozenSet[str] = frozenset(
    {QUEUED, RUNNING, DONE, FAILED, CANCELLED}
)

#: state -> the states it may move to; empty set == terminal
TRANSITIONS: Dict[str, FrozenSet[str]] = {
    QUEUED: frozenset({RUNNING, CANCELLED, FAILED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED, QUEUED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

TERMINAL: FrozenSet[str] = frozenset(
    state for state, targets in TRANSITIONS.items() if not targets
)


class InvalidTransition(Exception):
    """An illegal state-machine edge was attempted."""

    def __init__(self, job_id: str, old: str, new: str):
        super().__init__(
            f"job {job_id}: illegal transition {old!r} -> {new!r}"
        )
        self.job_id = job_id
        self.old = old
        self.new = new


def check_transition(job_id: str, old: str, new: str) -> None:
    """Validate one edge; raises :class:`InvalidTransition`."""
    if new not in STATES:
        raise InvalidTransition(job_id, old, new)
    if new not in TRANSITIONS[old]:
        raise InvalidTransition(job_id, old, new)


@dataclass
class Job:
    """One submitted statement and its lifecycle record.

    Mutation protocol: all state changes go through the owning
    :class:`~repro.jobs.table.JobTable`, whose lock serializes them;
    a bare Job is only safe to mutate single-threaded (unit tests).
    """

    id: str
    statement: str
    #: "mine" for MINE RULE statements, "sql" for everything else
    kind: str = "sql"
    state: str = QUEUED
    #: terminal detail: the recorded error of a failed job
    error: Optional[str] = None
    #: terminal detail: the result payload of a done job
    result: Optional[Dict[str, Any]] = None
    #: execution attempts started (bumped on queued -> running)
    attempts: int = 0
    #: cooperative-cancel flag polled by the running pipeline
    cancel_requested: bool = False
    #: trace correlation id shared with the run-history journal and
    #: every span/log line the job's execution produces
    trace_id: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: monotonic-clock twins of started_at/finished_at; durations come
    #: from these so a wall-clock step (NTP slew, DST) can't produce
    #: negative or inflated runtimes.  The wall-clock fields stay for
    #: display.
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None

    def transition(self, new_state: str) -> None:
        """Move to *new_state* (validating the edge) and keep the
        timestamps/attempt counter consistent."""
        check_transition(self.id, self.state, new_state)
        now = time.time()
        mono = time.monotonic()
        if new_state == RUNNING:
            self.attempts += 1
            self.started_at = now
            self.started_mono = mono
        elif new_state in TERMINAL:
            self.finished_at = now
            self.finished_mono = mono
        elif new_state == QUEUED:
            # requeued for another attempt: the record is live again
            self.started_at = None
            self.finished_at = None
            self.started_mono = None
            self.finished_mono = None
        self.state = new_state

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL

    def runtime(self) -> Optional[float]:
        """Seconds from start to finish (None until finished).

        Measured on the monotonic clock; falls back to the wall-clock
        pair only for records restored from the run-history journal,
        where no monotonic timestamps exist."""
        if self.started_mono is not None and self.finished_mono is not None:
            return self.finished_mono - self.started_mono
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self, with_result: bool = False) -> Dict[str, Any]:
        """JSON-able snapshot for the REST API."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "statement": self.statement,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "trace_id": self.trace_id,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
        }
        if with_result:
            payload["result"] = self.result
        return payload
