"""Bounded worker pool: daemon threads draining one queue.

Deliberately tiny — stdlib ``queue.Queue`` with a maxsize gives the
bounded submission semantics (an overfull queue rejects immediately
instead of buffering without limit), and sentinel items give a clean
join on shutdown.  The pool knows nothing about jobs; it runs whatever
handler the :class:`~repro.jobs.service.JobService` installs.

The pool is the single source of truth for its own load: ``_pending``
(submitted, not yet started) and ``_busy`` (handler running) are
counters mutated only under one lock, and every transition invokes the
optional :attr:`WorkerPool.observer` *while still holding that lock* —
so an observer publishing the values into gauges sees a totally
ordered sequence of snapshots and can never overwrite a newer state
with a stale one (reading ``queue.qsize()`` / ``busy`` from outside,
as the service used to, interleaves reads with other workers'
transitions and publishes garbage under load).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional

_STOP = object()


class WorkerPool:
    """``workers`` daemon threads calling ``handler(item)`` per item."""

    def __init__(
        self,
        handler: Callable[[Any], None],
        workers: int = 4,
        queue_size: int = 64,
        name: str = "repro-job",
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if queue_size < 1:
            raise ValueError(
                f"queue_size must be positive, got {queue_size}"
            )
        self.handler = handler
        self.workers = workers
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._name = name
        self._threads: list = []
        self._pending = 0
        self._busy = 0
        self._state_lock = threading.Lock()
        self._started = False
        #: ``observer(pending, busy)`` called under the state lock on
        #: every transition (gauge publication hook)
        self.observer: Optional[Callable[[int, int], None]] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"{self._name}-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Drain-free shutdown: each worker exits after its current
        item once it sees a sentinel."""
        if not self._started:
            return
        for _ in self._threads:
            self.queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._started = False

    # -- submission -----------------------------------------------------

    def submit(self, item: Any) -> None:
        """Enqueue without blocking; raises :class:`queue.Full` when
        the bounded queue is at capacity (back-pressure)."""
        # Count before enqueueing (and roll back on rejection) so a
        # worker that picks the item up immediately can never drive
        # the pending counter negative.
        with self._state_lock:
            self._pending += 1
            self._notify_locked()
        try:
            self.queue.put_nowait(item)
        except BaseException:
            with self._state_lock:
                self._pending -= 1
                self._notify_locked()
            raise

    # -- observability --------------------------------------------------

    @property
    def depth(self) -> int:
        """Items submitted but not yet picked up by a worker."""
        with self._state_lock:
            return self._pending

    @property
    def busy(self) -> int:
        """Workers currently executing an item."""
        with self._state_lock:
            return self._busy

    def _notify_locked(self) -> None:
        if self.observer is not None:
            self.observer(self._pending, self._busy)

    # -- worker loop ----------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                # sentinels enter via stop(), not submit(): they are
                # never counted as pending work
                self.queue.task_done()
                return
            with self._state_lock:
                self._pending -= 1
                self._busy += 1
                self._notify_locked()
            try:
                self.handler(item)
            except Exception:
                # The handler owns error recording (a job lands in
                # "failed"); a bug in it must not kill the worker.
                pass
            finally:
                with self._state_lock:
                    self._busy -= 1
                    self._notify_locked()
                self.queue.task_done()
