"""Bounded worker pool: daemon threads draining one queue.

Deliberately tiny — stdlib ``queue.Queue`` with a maxsize gives the
bounded submission semantics (an overfull queue rejects immediately
instead of buffering without limit), and sentinel items give a clean
join on shutdown.  The pool knows nothing about jobs; it runs whatever
handler the :class:`~repro.jobs.service.JobService` installs.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional

_STOP = object()


class WorkerPool:
    """``workers`` daemon threads calling ``handler(item)`` per item."""

    def __init__(
        self,
        handler: Callable[[Any], None],
        workers: int = 4,
        queue_size: int = 64,
        name: str = "repro-job",
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if queue_size < 1:
            raise ValueError(
                f"queue_size must be positive, got {queue_size}"
            )
        self.handler = handler
        self.workers = workers
        self.queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._name = name
        self._threads: list = []
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._run, name=f"{self._name}-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Drain-free shutdown: each worker exits after its current
        item once it sees a sentinel."""
        if not self._started:
            return
        for _ in self._threads:
            self.queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        self._started = False

    # -- submission -----------------------------------------------------

    def submit(self, item: Any) -> None:
        """Enqueue without blocking; raises :class:`queue.Full` when
        the bounded queue is at capacity (back-pressure)."""
        self.queue.put_nowait(item)

    # -- observability --------------------------------------------------

    @property
    def depth(self) -> int:
        """Items waiting in the queue right now."""
        return self.queue.qsize()

    @property
    def busy(self) -> int:
        """Workers currently executing an item."""
        with self._busy_lock:
            return self._busy

    # -- worker loop ----------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self.queue.get()
            if item is _STOP:
                self.queue.task_done()
                return
            with self._busy_lock:
                self._busy += 1
            try:
                self.handler(item)
            except Exception:
                # The handler owns error recording (a job lands in
                # "failed"); a bug in it must not kill the worker.
                pass
            finally:
                with self._busy_lock:
                    self._busy -= 1
                self.queue.task_done()
