"""REST surface of the job service.

Routes (mounted on the monitoring HTTP server, so one port serves
both the observability endpoints and the job API):

* ``POST   /jobs``               — submit; body is JSON
  (``{"statement": "...", "kind": ..., "retries": ...}``) or a raw
  statement; answers 201 with the job record
* ``GET    /jobs``               — list (``?state=queued`` filters)
* ``GET    /jobs/<id>``          — job record
* ``GET    /jobs/<id>/result``   — result payload of a ``done`` job;
  409 with the current state while not done
* ``DELETE /jobs/<id>``          — cancel (idempotent)

Transport-agnostic by design: :meth:`JobsApi.handle` maps
``(method, path, body)`` to ``(status code, JSON payload)`` so the
HTTP handler stays a dumb shim and the full API is testable without
sockets.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.jobs.model import DONE, STATES
from repro.jobs.service import JobQueueFull, JobService

Response = Tuple[int, Dict[str, Any]]


class JobsApi:
    """Method+path router over one :class:`JobService`."""

    def __init__(self, service: JobService):
        self.service = service

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> Optional[Response]:
        """Route one request; None when the path is not ours."""
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "jobs":
            return None
        method = method.upper()
        if len(parts) == 1:
            if method == "GET":
                return self._list(query or {})
            if method == "POST":
                return self._submit(body)
            return 405, {"error": f"{method} not allowed on /jobs"}
        job_id = parts[1]
        if len(parts) == 2:
            if method == "GET":
                return self._get(job_id)
            if method == "DELETE":
                return self._cancel(job_id)
            return 405, {"error": f"{method} not allowed on /jobs/<id>"}
        if len(parts) == 3 and parts[2] == "result":
            if method == "GET":
                return self._result(job_id)
            return 405, {
                "error": f"{method} not allowed on /jobs/<id>/result"
            }
        return 404, {"error": f"unknown path {path!r}"}

    # -- handlers -------------------------------------------------------

    def _submit(self, body: Optional[bytes]) -> Response:
        if not body:
            return 400, {"error": "empty request body"}
        text = body.decode("utf-8", errors="replace")
        statement: Optional[str] = text
        kind: Optional[str] = None
        retries: Optional[int] = None
        stripped = text.lstrip()
        if stripped.startswith("{"):
            try:
                payload = json.loads(stripped)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}
            if not isinstance(payload, dict):
                return 400, {"error": "JSON body must be an object"}
            statement = payload.get("statement")
            kind = payload.get("kind")
            retries = payload.get("retries")
            if retries is not None and (
                not isinstance(retries, int) or retries < 1
            ):
                return 400, {"error": "retries must be a positive integer"}
        if not statement or not str(statement).strip():
            return 400, {"error": "missing statement"}
        try:
            job = self.service.submit(
                str(statement), kind=kind, retries=retries
            )
        except JobQueueFull as exc:
            return 503, {
                "error": str(exc),
                "job": exc.job.to_dict(),
            }
        except ValueError as exc:
            return 400, {"error": str(exc)}
        return 201, {"job": job.to_dict()}

    def _list(self, query: Dict[str, str]) -> Response:
        state = query.get("state")
        if state is not None and state not in STATES:
            return 400, {
                "error": f"unknown state {state!r}",
                "states": sorted(STATES),
            }
        jobs = self.service.list(state)
        return 200, {
            "jobs": [job.to_dict() for job in jobs],
            "stats": self.service.stats(),
        }

    def _get(self, job_id: str) -> Response:
        job = self.service.get(job_id)
        if job is None:
            return 404, {"error": f"no such job: {job_id}"}
        return 200, {"job": job.to_dict()}

    def _result(self, job_id: str) -> Response:
        job = self.service.get(job_id)
        if job is None:
            return 404, {"error": f"no such job: {job_id}"}
        if job.state != DONE:
            return 409, {
                "error": f"{job_id} is {job.state}, not {DONE}",
                "job": job.to_dict(),
            }
        return 200, {"job": job.to_dict(with_result=True)}

    def _cancel(self, job_id: str) -> Response:
        try:
            job = self.service.cancel(job_id)
        except KeyError:
            return 404, {"error": f"no such job: {job_id}"}
        return 200, {"job": job.to_dict()}
