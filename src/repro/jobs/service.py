"""The job service: submission, execution, cancellation, metrics.

Glues the pieces together: statements come in through
:meth:`JobService.submit` (directly or via the REST API), land in the
:class:`~repro.jobs.table.JobTable`, and a
:class:`~repro.jobs.pool.WorkerPool` executes them against one shared
:class:`~repro.system.MiningSystem`.  MINE RULE jobs run the full
pipeline under the engine's write lock; REFRESH RULES jobs run the
FUP-style incremental maintenance path (:mod:`repro.incremental`)
under the same lock; SQL jobs go straight to the engine, whose
statement guard gives scans the shared read side.

Fault sites (:mod:`repro.faults`): ``jobs.submit`` fires during
submission (the job is recorded, then lands in ``failed`` with the
error), ``jobs.run.<id>`` fires at the start of each execution attempt
— with a per-job :class:`~repro.faults.RetryPolicy` the attempt is
retried with backoff, and a retried job's result is bit-identical to
an unfaulted run.

Metrics (PR5 registry): ``repro_jobs_queue_depth`` (gauge),
``repro_job_seconds{kind,status}`` (histogram),
``repro_jobs_total{status}`` (counter),
``repro_jobs_workers_busy`` (gauge).  The two gauges are published
from the pool's transition observer — one lock-ordered source of
truth — never from service-side reads that could interleave with
concurrent workers and publish stale values.
"""

from __future__ import annotations

import queue
import time
from typing import Any, Dict, List, Optional

from repro import faults
from repro.faults import FaultError, RetryPolicy
from repro.jobs.model import CANCELLED, DONE, FAILED, Job
from repro.jobs.pool import WorkerPool
from repro.jobs.table import JobTable
from repro.obs import context as obs_context
from repro.obs import profile as obs_profile
from repro.obs.context import TraceContext, new_trace_id
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.obs.runlog import RunLog, statement_fingerprint
from repro.sqlengine.dump import dump_table_text
from repro.system import MiningSystem, RunCancelled


class JobQueueFull(Exception):
    """The bounded job queue rejected a submission (back-pressure).

    Carries the already-recorded job (state ``failed``) so callers can
    report its id."""

    def __init__(self, job: Job):
        super().__init__(
            f"job queue full; {job.id} rejected (resubmit later)"
        )
        self.job = job


class JobService:
    """Concurrent statement execution against one mining system."""

    def __init__(
        self,
        system: MiningSystem,
        workers: int = 4,
        queue_size: int = 64,
        capacity: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        retry_policy: Optional[RetryPolicy] = None,
        runlog: Optional[RunLog] = None,
    ):
        self.system = system
        self.table = JobTable(capacity=capacity)
        #: run-history journal; SQL jobs are recorded here directly
        #: (mine/refresh jobs are recorded by the system, which owns
        #: their stage timings), and on construction finished jobs from
        #: a previous process are rehydrated into the table
        self.runlog = runlog
        if runlog is not None:
            self._rehydrate(runlog)
        self.pool = WorkerPool(
            handler=self._execute, workers=workers, queue_size=queue_size
        )
        self.retry_policy = retry_policy
        #: job id -> per-job retry policy override
        self._policies: Dict[str, RetryPolicy] = {}
        registry = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = registry
        self._queue_depth = registry.gauge(
            "repro_jobs_queue_depth", "Jobs waiting in the bounded queue"
        )
        self._workers_busy = registry.gauge(
            "repro_jobs_workers_busy", "Workers currently executing a job"
        )
        self._job_seconds = registry.histogram(
            "repro_job_seconds",
            "Job execution latency by kind and terminal status",
            ("kind", "status"),
        )
        self._jobs_total = registry.counter(
            "repro_jobs_total", "Jobs finished by terminal status",
            ("status",),
        )
        self.pool.observer = self._publish_pool_gauges

    def _rehydrate(self, runlog: RunLog) -> None:
        """Restore terminal job records from the run-history journal so
        ``GET /jobs`` shows history across a service restart."""
        state_by_status = {"ok": DONE, "cancelled": CANCELLED}
        for record in runlog.list():
            job_id = record.get("job_id")
            if not isinstance(job_id, str) or not job_id:
                continue
            state = state_by_status.get(record.get("status"), FAILED)
            at = record.get("at")
            seconds = record.get("seconds")
            finished = at if isinstance(at, (int, float)) else None
            started = (
                finished - seconds
                if finished is not None and isinstance(seconds, (int, float))
                else finished
            )
            job = Job(
                id=job_id,
                statement=str(record.get("statement", "")),
                kind=str(record.get("kind", "sql")),
                state=state,
                error=record.get("error"),
                attempts=1,
                trace_id=record.get("trace_id"),
                submitted_at=started if started is not None else 0.0,
                started_at=started,
                finished_at=finished,
            )
            self.table.restore(job)

    def _publish_pool_gauges(self, pending: int, busy: int) -> None:
        """Pool transition observer — invoked under the pool's state
        lock, so successive gauge publications are totally ordered."""
        self._queue_depth.set(pending)
        self._workers_busy.set(busy)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "JobService":
        self.pool.start()
        self._queue_depth.set(0)
        self._workers_busy.set(0)
        return self

    def stop(self) -> None:
        self.pool.stop()

    def __enter__(self) -> "JobService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submission -----------------------------------------------------

    def submit(
        self,
        statement: str,
        kind: Optional[str] = None,
        retries: Optional[int] = None,
    ) -> Job:
        """Record and enqueue one statement; returns the job record.

        ``kind`` is derived from the text when omitted (``mine`` for
        MINE RULE, ``refresh`` for REFRESH RULES, ``sql`` otherwise).
        ``retries`` installs a per-job retry policy overriding the
        service default.  A full queue raises :class:`JobQueueFull`;
        an injected ``jobs.submit`` fault lands the job in ``failed``
        with the error recorded.
        """
        text = statement.strip().rstrip(";").strip()
        if not text:
            raise ValueError("empty statement")
        if kind is None:
            upper = text.upper()
            if upper.startswith("MINE"):
                kind = "mine"
            elif upper.startswith("REFRESH"):
                kind = "refresh"
            else:
                kind = "sql"
        if kind not in ("mine", "refresh", "sql"):
            raise ValueError(f"unknown job kind {kind!r}")
        job = self.table.new_job(text, kind)
        job.trace_id = new_trace_id()
        if retries is not None:
            self._policies[job.id] = RetryPolicy(max_attempts=retries)
        try:
            faults.check("jobs.submit")
            self.pool.submit(job.id)
        except FaultError as exc:
            self._policies.pop(job.id, None)
            self.table.transition(job.id, FAILED, error=str(exc))
            self._jobs_total.inc(status=FAILED)
            return job
        except queue.Full:
            self._policies.pop(job.id, None)
            self.table.transition(job.id, FAILED, error="job queue full")
            self._jobs_total.inc(status=FAILED)
            raise JobQueueFull(job) from None
        return job

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued jobs turn ``cancelled`` immediately,
        running ones get the cooperative flag, terminal ones are left
        untouched (idempotent)."""
        return self.table.request_cancel(job_id)

    def get(self, job_id: str) -> Optional[Job]:
        return self.table.get(job_id)

    def list(self, state: Optional[str] = None) -> List[Job]:
        return self.table.list(state)

    def wait(self, job_id: str, timeout: float = 30.0,
             poll: float = 0.01) -> Job:
        """Block until the job reaches a terminal state (tests/CLI)."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.table.get(job_id)
            if job is None:
                raise KeyError(f"no such job: {job_id}")
            if job.terminal:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {job.state} after {timeout}s"
                )
            time.sleep(poll)

    def stats(self) -> Dict[str, Any]:
        """Service snapshot for ``/stats.json`` and ``.jobs``."""
        return {
            "counts": self.table.counts(),
            "total": len(self.table),
            "evicted": self.table.evicted,
            "queue_depth": self.pool.depth,
            "workers": self.pool.workers,
            "workers_busy": self.pool.busy,
        }

    # -- execution (worker threads) -------------------------------------

    def _execute(self, job_id: str) -> None:
        job = self.table.try_start(job_id)
        if job is None:  # cancelled while queued
            self._policies.pop(job_id, None)
            return
        policy = self._policies.get(job_id) or self.retry_policy
        if policy is None:
            policy = RetryPolicy.single()
        if job.trace_id is None:
            job.trace_id = new_trace_id()
        context = TraceContext(trace_id=job.trace_id, job_id=job.id)
        status = FAILED
        error_text: Optional[str] = None
        started = time.perf_counter()
        cpu_start = obs_profile.cpu_seconds()
        try:
            with obs_context.activated(context):
                result = policy.execute(
                    lambda: self._run_job(job, policy),
                    stage=f"jobs.run.{job_id}",
                )
            self.table.transition(job_id, DONE, result=result)
            status = DONE
        except RunCancelled as exc:
            error_text = str(exc)
            self.table.transition(job_id, CANCELLED)
            status = CANCELLED
        except Exception as exc:
            error_text = f"{type(exc).__name__}: {exc}"
            self.table.transition(
                job_id, FAILED, error=error_text
            )
            status = FAILED
        finally:
            elapsed = time.perf_counter() - started
            self._policies.pop(job_id, None)
            self._job_seconds.observe(elapsed, kind=job.kind, status=status)
            self._jobs_total.inc(status=status)
            if self.runlog is not None and job.kind == "sql":
                # mine/refresh jobs are journalled by the system with
                # full stage timings; plain SQL never reaches it, so
                # the service records those itself
                self.runlog.record(
                    id=job.trace_id,
                    kind="sql",
                    trace_id=job.trace_id,
                    job_id=job.id,
                    statement=job.statement[:200],
                    fingerprint=statement_fingerprint(job.statement),
                    status={DONE: "ok", CANCELLED: "cancelled"}.get(
                        status, "error"
                    ),
                    seconds=round(elapsed, 6),
                    cpu_seconds=round(
                        obs_profile.cpu_seconds() - cpu_start, 6
                    ),
                    **({"error": error_text} if error_text else {}),
                )

    def _run_job(self, job: Job, policy: RetryPolicy) -> Dict[str, Any]:
        """One execution attempt (the unit the retry policy repeats)."""
        faults.check(f"jobs.run.{job.id}")
        cancel = self.table.cancel_hook(job.id)
        if cancel():
            raise RunCancelled(f"{job.id} cancelled before execution")
        if job.kind == "mine":
            return self._run_mine(job, policy, cancel)
        if job.kind == "refresh":
            return self._run_refresh(job, policy, cancel)
        return self._run_sql(job)

    def _rule_payload(self, result) -> Dict[str, Any]:
        """Display text + canonical rule list shared by the mine and
        refresh result payloads."""
        out = result.output_table
        db = self.system.db
        display_table = f"{out}_Display"
        with db.rwlock.read_locked():
            display = (
                dump_table_text(db, display_table)
                if db.catalog.has_table(display_table)
                else None
            )
        rules = sorted(
            (
                sorted(rule.body),
                sorted(rule.head),
                round(rule.support, 9),
                round(rule.confidence, 9),
            )
            for rule in result.rules
        )
        return {
            "output_table": out,
            "rule_count": len(result.rules),
            "rules": rules,
            "display": display,
            "run_id": result.run_id,
        }

    def _run_mine(self, job: Job, policy: RetryPolicy,
                  cancel) -> Dict[str, Any]:
        result = self.system.run(job.statement, retry=policy, cancel=cancel)
        payload = self._rule_payload(result)
        payload["kind"] = "mine"
        payload["preprocessing_reused"] = result.preprocessing_reused
        return payload

    def _run_refresh(self, job: Job, policy: RetryPolicy,
                     cancel) -> Dict[str, Any]:
        result = self.system.refresh(
            job.statement, retry=policy, cancel=cancel
        )
        payload = self._rule_payload(result)
        payload["kind"] = "refresh"
        payload["mode"] = result.stats.mode
        if result.stats.reason:
            payload["reason"] = result.stats.reason
        return payload

    def _run_sql(self, job: Job) -> Dict[str, Any]:
        result = self.system.db.execute(job.statement)
        return {
            "kind": "sql",
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "rowcount": result.rowcount,
        }
