"""Asynchronous job execution for the mining service.

The paper's architecture assumes the mining operator lives inside a
live DBMS serving many clients concurrently.  This package supplies
that shape: statements are submitted as *jobs* into a bounded queue, a
worker pool executes them against one shared
:class:`~repro.system.MiningSystem`, and every job moves through an
explicit state machine (``queued`` → ``running`` →
``done``/``failed``/``cancelled``) whose results stay retrievable by
job id.  The REST surface lives in :mod:`repro.jobs.api` and is
mounted on the monitoring HTTP server.

Concurrency contract: MINE RULE jobs hold the engine's write lock for
their whole pipeline (see :mod:`repro.sqlengine.locks`), so every
job's output is bit-identical to running the same statements serially;
plain SELECT jobs share the read side and scan in parallel.
"""

from repro.jobs.model import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    TRANSITIONS,
    InvalidTransition,
    Job,
)
from repro.jobs.pool import WorkerPool
from repro.jobs.service import JobQueueFull, JobService
from repro.jobs.table import JobTable

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "STATES",
    "TERMINAL",
    "TRANSITIONS",
    "InvalidTransition",
    "Job",
    "JobQueueFull",
    "JobService",
    "JobTable",
    "WorkerPool",
]
