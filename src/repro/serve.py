"""Serving mode: MINE RULE over stdin + HTTP with a monitoring endpoint.

``python -m repro serve`` turns the shell into a long-running service:

* statements arrive on **stdin** using the shell's line protocol
  (``;``-terminated SQL / MINE RULE statements, dot meta commands) and
  results stream to stdout — one process can sit behind a pipe, a
  socket relay or a test harness;
* statements also arrive over **HTTP** as jobs (:mod:`repro.jobs`):
  ``POST /jobs`` submits, ``GET /jobs/<id>`` polls,
  ``GET /jobs/<id>/result`` retrieves, ``DELETE /jobs/<id>`` cancels;
  a bounded worker pool executes jobs concurrently against the same
  database the stdin loop uses (``--job-workers`` sizes it);
* a **monitoring HTTP server** (:mod:`repro.obs.httpd`) runs on a side
  thread: ``/metrics`` (Prometheus text), ``/healthz`` (503 while the
  last run failed), ``/stats.json`` (registry snapshot + slow-query
  log), ``/trace.json`` (Chrome trace of the session);
* every statement is observed: per-statement SQL latency histograms,
  per-Q preprocessor stage timings, core-operator counters, per-job
  queue-depth/latency series, a slow-query ring buffer, and (with
  ``--log-json``) one structured JSON log line per statement on
  stderr.

Quickstart::

    python -m repro serve --port 8077 --load purchase &
    curl -s -X POST localhost:8077/jobs -d 'MINE RULE r AS SELECT ...'
    curl -s localhost:8077/jobs/job-1
    curl -s localhost:8077/jobs/job-1/result
    curl -s localhost:8077/metrics | grep repro_job
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterator, List, Optional

from repro import faults
from repro.algorithms import ALGORITHMS
from repro.cli import SCENARIOS, Shell
from repro.faults import FaultSchedule, RetryPolicy
from repro.jobs.api import JobsApi
from repro.jobs.service import JobService
from repro.obs.export import render_chrome_trace, write_chrome_trace
from repro.obs.httpd import HealthState, MonitoringServer
from repro.obs.jsonlog import JsonLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.runlog import RunLog
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import Tracer
from repro.sqlengine import STORAGE_KINDS


class MineRuleService:
    """One serving session: shell + registry + monitor, wired together.

    Construction builds the full observability bundle — an enabled
    tracer feeding a metrics registry, a slow-query log and health
    state shared with the mining system — and a monitoring server
    (not yet started; call :meth:`start` or use ``with``).
    """

    def __init__(
        self,
        algorithm: str = "apriori",
        scenario: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        slow_threshold: float = 0.050,
        analyze: bool = False,
        log_json: bool = False,
        retry_policy: Optional[RetryPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        workers: int = 1,
        shard_start_method: Optional[str] = None,
        storage: Optional[str] = None,
        batch_size: Optional[int] = None,
        memory_budget: Optional[int] = None,
        packed_min_slots: Optional[int] = None,
        job_workers: int = 4,
        job_queue: int = 64,
        run_log: Optional[str] = None,
        profile_mem: bool = False,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(
            enabled=True,
            analyze=analyze,
            metrics=self.metrics,
            profile_mem=profile_mem,
        )
        self.slowlog = SlowQueryLog(threshold=slow_threshold)
        self.health = HealthState()
        self.json_log = JsonLogger() if log_json else None
        #: persistent run history — NDJSON journal when ``run_log``
        #: names a file (replayed on startup, so /runs and the jobs
        #: table survive a restart), purely in-memory otherwise
        self.runlog = RunLog(path=run_log)
        self.shell = Shell(
            algorithm=algorithm,
            retry_policy=retry_policy,
            tracer=self.tracer,
            metrics=self.metrics,
            slowlog=self.slowlog,
            health=self.health,
            json_log=self.json_log,
            runlog=self.runlog,
            workers=workers,
            shard_start_method=shard_start_method,
            storage=storage,
            batch_size=batch_size,
            memory_budget=memory_budget,
            packed_min_slots=packed_min_slots,
        )
        if scenario is not None:
            loader = SCENARIOS[scenario]
            loader(self.shell.db)
        #: concurrent job execution against the same mining system the
        #: stdin loop drives — jobs and stdin statements interleave
        #: safely through the engine's reader/writer lock
        self.jobs = JobService(
            self.shell.system,
            workers=job_workers,
            queue_size=job_queue,
            metrics=self.metrics,
            retry_policy=retry_policy,
            runlog=self.runlog,
        )
        self.shell.jobs = self.jobs
        self.monitor = MonitoringServer(
            registry=self.metrics,
            health=self.health,
            stats=self.stats,
            trace=lambda: render_chrome_trace(self.tracer),
            host=host,
            port=port,
            api=JobsApi(self.jobs),
            runlog=self.runlog,
        )

    # ------------------------------------------------------------------

    def start(self) -> "MineRuleService":
        self.jobs.start()
        self.monitor.start()
        if self.json_log is not None:
            self.json_log.log(
                "serve.start",
                url=self.monitor.url,
                endpoints=["/metrics", "/healthz", "/stats.json",
                           "/trace.json", "/runs", "/jobs"],
                job_workers=self.jobs.pool.workers,
            )
        return self

    def stop(self) -> None:
        self.monitor.stop()
        self.jobs.stop()
        if self.json_log is not None:
            self.json_log.log("serve.stop")

    def __enter__(self) -> "MineRuleService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def feed(self, line: str) -> Optional[str]:
        """One input line of the shell protocol; output once a full
        statement has accumulated."""
        return self.shell.feed(line)

    def stats(self) -> dict:
        """The ``/stats.json`` payload."""
        return {
            "health": self.health.snapshot(),
            "jobs": self.jobs.stats(),
            "statements_executed": self.shell.db.statements_executed,
            "slow_queries": self.slowlog.as_dicts(),
            "slow_queries_total": self.slowlog.total_recorded,
            "slow_threshold_ms": round(self.slowlog.threshold * 1000, 3),
            "metrics": self.metrics.snapshot(),
        }


def _iter_stdin_lines() -> Iterator[str]:
    """Yield stdin lines without holding the stream's buffer lock.

    The serving loop blocks on stdin while job threads fork shard
    worker pools (``--workers``).  A fork taken while this thread sits
    inside ``sys.stdin.readline()`` snapshots the stream's lock in the
    held state, and the child then deadlocks in multiprocessing's
    bootstrap when it closes its inherited ``sys.stdin``.  Reading the
    file descriptor directly keeps the stream object unlocked, so
    forked children can always close it.
    """
    try:
        fd = sys.stdin.fileno()
    except (AttributeError, OSError, ValueError):
        yield from sys.stdin  # not a real fd (tests): lock is harmless
        return
    buffer = bytearray()
    while True:
        newline = buffer.find(b"\n")
        if newline >= 0:
            line = bytes(buffer[: newline + 1])
            del buffer[: newline + 1]
            yield line.decode("utf-8", errors="replace")
            continue
        chunk = os.read(fd, 65536)
        if not chunk:
            break
        buffer.extend(chunk)
    if buffer:
        yield bytes(buffer).decode("utf-8", errors="replace")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serving-mode MINE RULE: statements on stdin, "
        "monitoring endpoint on the side",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="monitoring bind address"
    )
    parser.add_argument(
        "--port", type=int, default=8077,
        help="monitoring port (0 picks an ephemeral one)",
    )
    parser.add_argument(
        "--load", default=None, choices=sorted(SCENARIOS), metavar="SCENARIO",
        help="preload a dataset: " + ", ".join(sorted(SCENARIOS)),
    )
    parser.add_argument(
        "--algorithm", default="apriori", choices=sorted(ALGORITHMS),
        help="pool algorithm for simple rules",
    )
    parser.add_argument(
        "--slow-threshold-ms", type=float, default=50.0, metavar="MS",
        help="statements slower than this land in the slow-query log",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="one structured JSON log line per statement on stderr",
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="capture EXPLAIN ANALYZE for every preprocessing query",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retry faulted pipeline stages up to N attempts",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="shard the core operator across N worker processes",
    )
    parser.add_argument(
        "--shard-start-method", default=None, metavar="METHOD",
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for the shard pool",
    )
    parser.add_argument(
        "--storage", default=None, choices=STORAGE_KINDS,
        help="physical layout of the encoded tables (default: columnar)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="ROWS",
        help="rows per batch in the vectorized executor",
    )
    parser.add_argument(
        "--memory-budget", type=int, default=None, metavar="BYTES",
        help="operator memory budget before spilling to disk",
    )
    parser.add_argument(
        "--packed-min-slots", type=int, default=None, metavar="SLOTS",
        help="smallest bitmap universe for the packed word kernels",
    )
    parser.add_argument(
        "--job-workers", type=int, default=4, metavar="N",
        help="worker threads executing HTTP-submitted jobs",
    )
    parser.add_argument(
        "--job-queue", type=int, default=64, metavar="N",
        help="bounded job queue size (full queue answers 503)",
    )
    parser.add_argument(
        "--fault-schedule", default=None, metavar="SPEC",
        help="install a deterministic fault schedule (chaos drills)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the session's Chrome trace-event JSON to FILE on exit",
    )
    parser.add_argument(
        "--run-log", default=None, metavar="FILE",
        help="append-only NDJSON run-history journal backing GET /runs "
        "(replayed on startup, so history survives restarts)",
    )
    parser.add_argument(
        "--profile-mem", action="store_true",
        help="attribute peak traced memory to spans via tracemalloc "
        "(costs real time; off by default)",
    )
    args = parser.parse_args(argv)

    if args.fault_schedule:
        spec = args.fault_schedule
        if spec.startswith("seed="):
            faults.install(FaultSchedule.random(int(spec[5:])))
        else:
            faults.install(FaultSchedule.parse(spec))
    retry_policy = (
        RetryPolicy(max_attempts=args.retries)
        if args.retries is not None
        else None
    )
    service = MineRuleService(
        algorithm=args.algorithm,
        scenario=args.load,
        host=args.host,
        port=args.port,
        slow_threshold=args.slow_threshold_ms / 1000.0,
        analyze=args.analyze,
        log_json=args.log_json,
        retry_policy=retry_policy,
        workers=args.workers,
        shard_start_method=args.shard_start_method,
        storage=args.storage,
        batch_size=args.batch_size,
        memory_budget=args.memory_budget,
        packed_min_slots=args.packed_min_slots,
        job_workers=args.job_workers,
        job_queue=args.job_queue,
        run_log=args.run_log,
        profile_mem=args.profile_mem,
    )
    service.start()
    print(
        f"repro serve — monitoring on {service.monitor.url} "
        f"(/metrics /healthz /stats.json /trace.json /runs /jobs); "
        f"statements on stdin, ; terminated; "
        f"POST /jobs submits statements over HTTP",
        file=sys.stderr,
        flush=True,
    )
    try:
        for line in _iter_stdin_lines():
            try:
                output = service.feed(line)
            except EOFError:  # .quit
                break
            if output:
                print(output, flush=True)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        if args.trace_out:
            path = write_chrome_trace(service.tracer, args.trace_out)
            print(f"trace written to {path}", file=sys.stderr, flush=True)
        service.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
