"""Runnable reproduction suite: regenerate every experiment in one go.

``python -m repro.experiments`` executes the full experiment index of
DESIGN.md (FIG1..FIG4 exactly, SYN-1..SYN-4 at a laptop-friendly
scale) and prints a markdown report of paper-vs-measured, the
machine-generated counterpart of EXPERIMENTS.md.  Each experiment
returns a structured :class:`ExperimentRecord`, so the suite doubles
as an end-to-end acceptance check: a failed assertion in any
experiment means the reproduction regressed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.datagen import (
    QuestParameters,
    figure1_rows,
    load_purchase_figure1,
    load_purchase_synthetic,
    load_quest,
)
from repro.decoupled import DecoupledWorkflow
from repro.kernel import Translator, Workspace
from repro.sqlengine import Database
from repro.system import MiningSystem

PAPER_STATEMENT = """
MINE RULE FilteredOrderedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""

EXPECTED_FIG2B = {
    ("{brown_boots}", "{col_shirts}", 0.5, 1.0),
    ("{jackets}", "{col_shirts}", 0.5, 0.5),
    ("{brown_boots,jackets}", "{col_shirts}", 0.5, 1.0),
}


@dataclass
class ExperimentRecord:
    """Outcome of one reproduced experiment."""

    id: str
    title: str
    status: str  # "exact match" | "reproduced" | "measured"
    details: List[str] = field(default_factory=list)
    seconds: float = 0.0

    def render(self) -> str:
        lines = [f"## {self.id} — {self.title}",
                 f"*status: {self.status}*  ({self.seconds:.2f}s)", ""]
        lines.extend(f"* {detail}" for detail in self.details)
        return "\n".join(lines)


class ExperimentSuite:
    """Runs the experiment index; every method asserts its artifact."""

    def run_all(self) -> List[ExperimentRecord]:
        records = []
        for runner in (
            self.fig1,
            self.fig2,
            self.fig3,
            self.fig4,
            self.syn1,
            self.syn2,
            self.syn3,
            self.syn4,
        ):
            started = time.perf_counter()
            record = runner()
            record.seconds = time.perf_counter() - started
            records.append(record)
        return records

    # -- figures -----------------------------------------------------------

    def fig1(self) -> ExperimentRecord:
        db = Database()
        load_purchase_figure1(db)
        rows = db.query(
            "SELECT tr, customer, item, date, price, qty FROM Purchase"
        )
        assert rows == figure1_rows()
        return ExperimentRecord(
            "FIG1",
            "the Purchase table",
            "exact match",
            [f"all {len(rows)} tuples reproduced verbatim"],
        )

    def fig2(self) -> ExperimentRecord:
        system = MiningSystem()
        load_purchase_figure1(system.db)
        result = system.execute(PAPER_STATEMENT)
        display = set(
            system.db.query(
                "SELECT BODY, HEAD, SUPPORT, CONFIDENCE "
                "FROM FilteredOrderedSets_Display"
            )
        )
        assert display == EXPECTED_FIG2B
        return ExperimentRecord(
            "FIG2",
            "the FilteredOrderedSets output table",
            "exact match",
            [
                "3 rules with the paper's exact support/confidence",
                "confidence({jackets} => {col_shirts}) = 0.5: all body "
                "clusters count for the denominator",
                f"directives: {result.directives}",
            ],
        )

    def fig3(self) -> ExperimentRecord:
        system = MiningSystem()
        load_purchase_figure1(system.db)
        result = system.execute(
            "MINE RULE Flow AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5"
        )
        components = result.flow.components()
        assert components == [
            "translator", "preprocessor", "core", "postprocessor",
        ]
        timing = ", ".join(
            f"{component} {seconds * 1000:.1f}ms"
            for component, seconds in result.timings.items()
        )
        return ExperimentRecord(
            "FIG3",
            "architecture process flow",
            "reproduced",
            [f"component order: {' -> '.join(components)}", timing],
        )

    def fig4(self) -> ExperimentRecord:
        db = Database()
        load_purchase_figure1(db)
        translator = Translator(db)
        cases = {
            "simple": (
                "MINE RULE O AS SELECT DISTINCT 1..n item AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
                "GROUP BY customer "
                "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.2",
                {"Q0v", "Q1", "Q2", "Q3", "Q4"},
            ),
            "paper": (
                PAPER_STATEMENT,
                {"Q0", "Q1", "Q2", "Q3", "Q6", "Q7", "Q4", "Q11", "Q8",
                 "Q9", "Q10"},
            ),
        }
        details = []
        for label, (text, expected) in cases.items():
            program = translator.translate(text, Workspace("FX"))
            got = {q.rstrip("ab") for q in program.labels()}
            assert got == expected, (label, got)
            details.append(
                f"{label} statement activates: "
                + ", ".join(sorted(got))
            )
        return ExperimentRecord(
            "FIG4", "preprocessor query gating", "reproduced", details
        )

    # -- synthetic performance ----------------------------------------------

    @staticmethod
    def _quest_db() -> Database:
        db = Database()
        load_quest(
            db,
            QuestParameters(transactions=200, avg_transaction_size=7,
                            patterns=40, items=90, seed=77),
        )
        return db

    def syn1(self) -> ExperimentRecord:
        db = self._quest_db()
        statement = (
            "MINE RULE Tight AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
            "GROUP BY tid EXTRACTING RULES WITH SUPPORT: 0.05, "
            "CONFIDENCE: 0.4"
        )
        started = time.perf_counter()
        tight = MiningSystem(database=db,
                             reuse_preprocessing=False).execute(statement)
        tight_seconds = time.perf_counter() - started
        started = time.perf_counter()
        loose = DecoupledWorkflow(db).run(
            "SELECT tid, item FROM Baskets", "tid", "item", 0.05, 0.4
        )
        loose_seconds = time.perf_counter() - started
        tight_keys = {(r.body, r.head) for r in tight.rules}
        loose_keys = {(r.body, r.head) for r in loose.rules}
        assert tight_keys == loose_keys
        return ExperimentRecord(
            "SYN-1",
            "tight vs decoupled architecture",
            "measured",
            [
                f"identical rule sets ({len(tight_keys)} rules)",
                f"tight {tight_seconds * 1000:.0f}ms (results in DB), "
                f"decoupled {loose_seconds * 1000:.0f}ms (results in a "
                f"flat file)",
            ],
        )

    def syn2(self) -> ExperimentRecord:
        from repro.algorithms import ALGORITHMS, get_algorithm
        from repro.datagen import generate_quest

        baskets = generate_quest(
            QuestParameters(transactions=200, avg_transaction_size=7,
                            patterns=40, items=90, seed=77)
        )
        reference = get_algorithm("apriori").mine(baskets, 10)
        details = []
        for name in sorted(ALGORITHMS):
            if name in ("exhaustive", "auto"):
                continue
            started = time.perf_counter()
            counts = get_algorithm(name).mine(baskets, 10)
            elapsed = time.perf_counter() - started
            assert counts == reference, name
            details.append(f"{name}: {elapsed * 1000:.1f}ms, exact")
        details.insert(0, f"{len(reference)} frequent itemsets agreed by "
                          f"the whole pool")
        return ExperimentRecord(
            "SYN-2", "the algorithm pool", "measured", details
        )

    def syn3(self) -> ExperimentRecord:
        db = Database()
        load_purchase_synthetic(db, customers=40, days=5, seed=13)
        counts = []
        for support in (0.1, 0.2):
            system = MiningSystem(database=db, reuse_preprocessing=False)
            result = system.execute(
                "MINE RULE Seq AS SELECT DISTINCT 1..n item AS BODY, "
                "1..n item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
                "GROUP BY customer CLUSTER BY date "
                "HAVING BODY.date < HEAD.date "
                f"EXTRACTING RULES WITH SUPPORT: {support}, "
                "CONFIDENCE: 0.1"
            )
            counts.append((support, len(result.rules)))
        assert counts[0][1] >= counts[1][1]
        return ExperimentRecord(
            "SYN-3",
            "general core: rule lattice",
            "measured",
            [f"rules vs support: {counts} (monotone pruning)"],
        )

    def syn4(self) -> ExperimentRecord:
        db = self._quest_db()
        system = MiningSystem(database=db, reuse_preprocessing=True)
        statement = (
            "MINE RULE W{} AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
            "GROUP BY tid EXTRACTING RULES WITH SUPPORT: 0.05, "
            "CONFIDENCE: 0.4"
        )
        cold = system.execute(statement.format(1))
        warm = system.execute(statement.format(2))
        assert warm.preprocessing_reused
        assert warm.timings["preprocessor"] < cold.timings["preprocessor"]
        return ExperimentRecord(
            "SYN-4",
            "preprocessing reuse",
            "measured",
            [
                f"preprocessor phase: cold "
                f"{cold.timings['preprocessor'] * 1000:.1f}ms -> warm "
                f"{warm.timings['preprocessor'] * 1000:.1f}ms",
            ],
        )


def generate_report() -> str:
    """Run the suite and render the markdown report."""
    suite = ExperimentSuite()
    records = suite.run_all()
    lines = [
        "# Reproduction report (generated by repro.experiments)",
        "",
        f"{len(records)} experiments, "
        f"{sum(r.seconds for r in records):.1f}s total.",
        "",
    ]
    for record in records:
        lines.append(record.render())
        lines.append("")
    return "\n".join(lines)


def main() -> int:  # pragma: no cover - thin wrapper
    print(generate_report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
