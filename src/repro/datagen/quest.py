"""IBM Quest-style synthetic basket generator.

The association-rule literature the core operator draws on (Agrawal &
Srikant's Apriori, Park's DHP, Savasere's Partition, Toivonen's
sampling) evaluates on the Quest synthetic workloads named
``T<avg basket>.I<avg pattern>.D<transactions>``: transactions are
built from a pool of *maximal potentially large itemsets* whose sizes
and weights follow the original generator's distributions (Poisson
sizes, exponential weights, item skew).  This module reimplements that
generator; :func:`load_quest` loads the result as a two-column
``(tid, item)`` table, the natural MINE RULE input for simple rules
grouped by transaction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.sqlengine.engine import Database
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType


@dataclass(frozen=True)
class QuestParameters:
    """Parameters mirroring the original Quest generator.

    ``transactions`` = |D|, ``avg_transaction_size`` = |T|,
    ``avg_pattern_size`` = |I|, ``patterns`` = |L|, ``items`` = N.
    """

    transactions: int = 1000
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 4.0
    patterns: int = 200
    items: int = 500
    correlation: float = 0.5
    corruption: float = 0.5
    seed: int = 101

    def name(self) -> str:
        """The customary T..I..D.. label, e.g. T10.I4.D1000."""
        t = int(round(self.avg_transaction_size))
        i = int(round(self.avg_pattern_size))
        return f"T{t}.I{i}.D{self.transactions}"


def _basket_stream(
    params: QuestParameters,
) -> Iterator[Tuple[int, frozenset]]:
    """Yield ``(tid, basket)`` pairs in tid order, one at a time.

    The single RNG path shared by :func:`generate_quest` and
    :func:`iter_baskets`: the pattern pool is drawn up front, then each
    basket consumes the stream of random draws in a fixed order, so
    chunked and materialized generation are bit-identical.
    """
    rng = random.Random(params.seed)

    patterns = _potentially_large_itemsets(params, rng)
    weights = _exponential_weights(len(patterns), rng)
    corruption_levels = [
        min(0.9, abs(rng.gauss(params.corruption, 0.1))) for _ in patterns
    ]

    for tid in range(1, params.transactions + 1):
        target = max(1, _poisson(params.avg_transaction_size - 1, rng) + 1)
        basket: set = set()
        guard = 0
        while len(basket) < target and guard < 50:
            guard += 1
            index = _weighted_choice(weights, rng)
            pattern = patterns[index]
            kept = [
                item
                for item in pattern
                if rng.random() >= corruption_levels[index]
            ]
            if not kept:
                continue
            if len(basket) + len(kept) > target * 1.5 and basket:
                break
            basket.update(kept)
        if not basket:
            basket.add(rng.randrange(params.items))
        yield tid, frozenset(basket)


def generate_quest(params: QuestParameters) -> Dict[int, frozenset]:
    """Generate ``{tid: frozenset(item ids)}`` baskets."""
    return dict(_basket_stream(params))


def iter_baskets(
    params: QuestParameters, chunk_size: int = 10_000
) -> Iterator[List[Tuple[int, frozenset]]]:
    """Yield baskets in chunks of ``chunk_size`` ``(tid, basket)``
    pairs (the last chunk may be shorter).

    Peak memory is bounded by one chunk plus the pattern pool, so
    million-group workloads can be generated — and fed shard by shard
    to the sharded executor — without materializing the full basket
    dictionary that :func:`generate_quest` returns.  Same seed, same
    baskets: the chunking only batches the underlying stream.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: List[Tuple[int, frozenset]] = []
    for pair in _basket_stream(params):
        chunk.append(pair)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def load_quest(
    database: Database,
    params: QuestParameters,
    table_name: str = "Baskets",
) -> Table:
    """Materialize Quest baskets as a ``(tid, item)`` table."""
    baskets = generate_quest(params)
    rows: List[Tuple[int, str]] = []
    for tid in sorted(baskets):
        for item in sorted(baskets[tid]):
            rows.append((tid, f"item{item}"))
    return database.create_table_from_rows(
        table_name,
        ("tid", "item"),
        rows,
        (SqlType.INTEGER, SqlType.VARCHAR),
        replace=True,
    )


# ---------------------------------------------------------------------------


def _potentially_large_itemsets(
    params: QuestParameters, rng: random.Random
) -> List[Tuple[int, ...]]:
    """The pool of maximal potentially large itemsets: sizes are
    Poisson with mean |I|; successive patterns share a correlated
    fraction of items with their predecessor."""
    patterns: List[Tuple[int, ...]] = []
    previous: Tuple[int, ...] = ()
    for _ in range(params.patterns):
        size = max(1, _poisson(params.avg_pattern_size - 1, rng) + 1)
        chosen: set = set()
        if previous:
            carry = int(round(params.correlation * min(size, len(previous))))
            chosen.update(rng.sample(previous, carry))
        while len(chosen) < size:
            chosen.add(_skewed_item(params.items, rng))
        pattern = tuple(sorted(chosen))
        patterns.append(pattern)
        previous = pattern
    return patterns


def _exponential_weights(count: int, rng: random.Random) -> List[float]:
    weights = [rng.expovariate(1.0) for _ in range(count)]
    total = sum(weights)
    return [w / total for w in weights]


def _weighted_choice(weights: Sequence[float], rng: random.Random) -> int:
    target = rng.random()
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if target <= cumulative:
            return index
    return len(weights) - 1


def _poisson(mean: float, rng: random.Random) -> int:
    """Knuth's algorithm; adequate for the small means used here."""
    if mean <= 0:
        return 0
    limit = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > limit:
        k += 1
        product *= rng.random()
    return k


def _skewed_item(items: int, rng: random.Random) -> int:
    """Item popularity skew (lower ids more popular)."""
    return min(items - 1, int(items * rng.random() ** 1.5))
