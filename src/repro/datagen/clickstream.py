"""Clickstream scenario for general association rules.

A web log ``Clicks(session, user, page, section, minute, dwell)``:
users run sessions, each session visits pages (with a section label, a
minute timestamp within the session and a dwell time).  The scenario
exercises the *general* MINE RULE features end to end:

* grouping by ``user`` or ``session``;
* clustering by ``minute`` with ordered cluster conditions
  (``BODY.minute < HEAD.minute`` — sequential-navigation rules);
* mining conditions over ``section``/``dwell``
  (e.g. catalogue pages leading to checkout pages);
* different body/head schemas (``page`` vs ``section``).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.sqlengine.engine import Database
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

CLICK_COLUMNS = ("session", "usr", "page", "section", "minute", "dwell")

_SECTIONS = ("home", "catalog", "product", "cart", "checkout", "help")

#: navigation funnel: section -> likely next sections
_FUNNEL = {
    "home": ("catalog", "catalog", "help", "product"),
    "catalog": ("product", "product", "catalog", "home"),
    "product": ("cart", "product", "catalog"),
    "cart": ("checkout", "catalog", "product"),
    "checkout": ("home",),
    "help": ("home", "catalog"),
}


def load_clickstream(
    database: Database,
    users: int = 40,
    sessions_per_user: int = 3,
    clicks_per_session: int = 6,
    pages_per_section: int = 8,
    seed: int = 23,
    table_name: str = "Clicks",
) -> Table:
    """Create a Clicks table with funnel-shaped navigation."""
    rng = random.Random(seed)
    rows: List[Tuple] = []
    session_id = 0
    for user_index in range(users):
        user = f"user{user_index + 1}"
        for _ in range(sessions_per_user):
            session_id += 1
            section = "home"
            minute = 0
            for _ in range(max(2, round(rng.gauss(clicks_per_session, 2)))):
                page_number = 1 + int(
                    pages_per_section * rng.random() ** 2
                ) % pages_per_section
                page = f"{section}_{page_number}"
                dwell = max(1, round(rng.gauss(30, 15)))
                rows.append((session_id, user, page, section, minute, dwell))
                minute += rng.randint(1, 5)
                section = rng.choice(_FUNNEL[section])
    return database.create_table_from_rows(
        table_name,
        CLICK_COLUMNS,
        rows,
        (
            SqlType.INTEGER,
            SqlType.VARCHAR,
            SqlType.VARCHAR,
            SqlType.VARCHAR,
            SqlType.INTEGER,
            SqlType.INTEGER,
        ),
        replace=True,
    )
