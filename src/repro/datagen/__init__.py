"""Workload generators.

* :mod:`repro.datagen.retail` — the paper's Purchase table (Figure 1,
  exact) and a scalable synthetic version of the same store scenario;
* :mod:`repro.datagen.quest` — IBM Quest-style synthetic basket data
  (the T·I·D workloads used by the algorithm papers the core operator
  implements: Apriori, DHP, Partition, sampling);
* :mod:`repro.datagen.clickstream` — a web-session scenario exercising
  general rules (clusters over request time, mining conditions over
  page attributes).
"""

from repro.datagen.clickstream import load_clickstream
from repro.datagen.quest import (
    QuestParameters,
    generate_quest,
    iter_baskets,
    load_quest,
)
from repro.datagen.telecom import (
    iter_burst_appends,
    iter_call_rows,
    load_telecom,
)
from repro.datagen.retail import (
    PURCHASE_COLUMNS,
    figure1_rows,
    iter_drift_appends,
    iter_purchase_rows,
    load_purchase_figure1,
    load_purchase_synthetic,
)

__all__ = [
    "PURCHASE_COLUMNS",
    "QuestParameters",
    "figure1_rows",
    "generate_quest",
    "iter_baskets",
    "iter_burst_appends",
    "iter_call_rows",
    "iter_drift_appends",
    "iter_purchase_rows",
    "load_clickstream",
    "load_purchase_figure1",
    "load_purchase_synthetic",
    "load_quest",
    "load_telecom",
]
