"""Telecom call-detail-record scenario.

The MINE RULE line of work was carried out with CSELT (the research
centre of Telecom Italia — the paper cites project 101196 CSELT —
Politecnico di Torino), where the motivating analyses were over call
detail records.  This generator produces a ``Calls`` table in that
spirit:

``Calls(caller, callee, cdate, hour, duration, cost, calltype)``

Subscribers have a stable social circle (callees they dial often), a
daily calling routine (morning/evening habits) and occasional premium
calls.  The scenario exercises MINE RULE shapes beyond retail baskets:

* grouping by ``caller`` with callees as items — "who is called
  together";
* clustering by ``cdate`` with ordered conditions — calling sequences;
* mining conditions over ``cost``/``calltype`` — cheap calls that
  precede premium calls (the classic fraud/marketing analysis).
"""

from __future__ import annotations

import datetime
import random
from typing import Iterator, List, Tuple

from repro.sqlengine.engine import Database
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

CALL_COLUMNS = (
    "caller", "callee", "cdate", "hour", "duration", "cost", "calltype",
)

_CALL_TYPES = ("local", "national", "international", "premium")
#: cost per minute by call type
_RATES = {"local": 0.05, "national": 0.15, "international": 0.60,
          "premium": 2.00}


def _call_row_stream(
    subscribers: int,
    days: int,
    calls_per_day: float,
    circle_size: int,
    premium_fraction: float,
    seed: int,
    start_date: datetime.date,
) -> Iterator[Tuple]:
    """Yield Calls rows one at a time, in table order.

    Single RNG path shared by :func:`load_telecom` and
    :func:`iter_call_rows`, so chunked and materialized generation
    produce identical rows.
    """
    rng = random.Random(seed)

    for subscriber_index in range(subscribers):
        caller = f"sub{subscriber_index + 1}"
        # a stable social circle of *nearby* subscriber ids, so that
        # adjacent subscribers share most of their circle and
        # co-called-callee rules have non-trivial support
        neighbourhood = range(1, min(subscribers, 2 * circle_size))
        circle = sorted(
            {
                f"sub{1 + (subscriber_index + delta) % subscribers}"
                for delta in rng.sample(
                    neighbourhood, min(circle_size, len(neighbourhood))
                )
            }
        )
        routine_hour = rng.choice((9, 13, 19, 21))
        for day in range(days):
            cdate = start_date + datetime.timedelta(days=day)
            count = max(0, round(rng.gauss(calls_per_day, 1.2)))
            for _ in range(count):
                if rng.random() < premium_fraction:
                    calltype = "premium"
                    callee = f"svc{rng.randint(1, 5)}"
                else:
                    calltype = rng.choices(
                        ("local", "national", "international"),
                        weights=(6, 3, 1),
                    )[0]
                    callee = rng.choice(circle)
                hour = min(
                    23, max(0, round(rng.gauss(routine_hour, 3)))
                )
                duration = max(1, round(rng.expovariate(1 / 4.0)))
                cost = round(duration * _RATES[calltype], 2)
                yield (
                    caller, callee, cdate, hour, duration, cost, calltype
                )


def iter_call_rows(
    subscribers: int = 50,
    days: int = 7,
    calls_per_day: float = 3.0,
    circle_size: int = 5,
    premium_fraction: float = 0.08,
    seed: int = 41,
    start_date: datetime.date = datetime.date(1997, 3, 1),
    chunk_size: int = 10_000,
) -> Iterator[List[Tuple]]:
    """Yield Calls rows in chunks of ``chunk_size``.

    Bounded-memory counterpart of :func:`load_telecom` (same
    parameters, same seed, identical rows).
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    stream = _call_row_stream(
        subscribers, days, calls_per_day, circle_size, premium_fraction,
        seed, start_date,
    )
    chunk: List[Tuple] = []
    for row in stream:
        chunk.append(row)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_burst_appends(
    bursts: int = 4,
    subscribers: int = 50,
    burst_subscribers: int = 8,
    calls_per_burst: int = 60,
    premium_fraction: float = 0.5,
    seed: int = 43,
    start_date: datetime.date = datetime.date(1997, 3, 8),
) -> Iterator[List[Tuple]]:
    """Yield ``bursts`` append batches of Calls rows modelling traffic
    spikes on the CSELT CDR scenario.

    Each burst picks a fresh clique of ``burst_subscribers`` callers
    who hammer a small callee set (heavy on premium ``svc`` numbers:
    the fraud pattern the motivating analyses chased), one calendar
    day per burst starting at ``start_date``.  Appending bursts after
    an initial MINE RULE run makes previously-rare callee itemsets
    cross the support border upward — the recount direction of an
    incremental REFRESH — without touching historical rows.
    """
    if bursts <= 0:
        raise ValueError("bursts must be positive")
    rng = random.Random(seed)
    for burst_index in range(bursts):
        cdate = start_date + datetime.timedelta(days=burst_index)
        clique = rng.sample(range(1, subscribers + 1),
                            min(burst_subscribers, subscribers))
        targets = sorted(
            {f"sub{1 + (s + 1) % subscribers}" for s in clique[:3]}
        )
        rows: List[Tuple] = []
        for _ in range(calls_per_burst):
            caller = f"sub{rng.choice(clique)}"
            if rng.random() < premium_fraction:
                calltype = "premium"
                callee = f"svc{rng.randint(1, 5)}"
            else:
                calltype = rng.choices(
                    ("local", "national", "international"),
                    weights=(6, 3, 1),
                )[0]
                callee = rng.choice(targets)
            hour = min(23, max(0, round(rng.gauss(22, 1.5))))
            duration = max(1, round(rng.expovariate(1 / 2.0)))
            cost = round(duration * _RATES[calltype], 2)
            rows.append(
                (caller, callee, cdate, hour, duration, cost, calltype)
            )
        yield rows


def load_telecom(
    database: Database,
    subscribers: int = 50,
    days: int = 7,
    calls_per_day: float = 3.0,
    circle_size: int = 5,
    premium_fraction: float = 0.08,
    seed: int = 41,
    table_name: str = "Calls",
    start_date: datetime.date = datetime.date(1997, 3, 1),
) -> Table:
    """Create a Calls table with socially-structured traffic."""
    rows = list(
        _call_row_stream(
            subscribers, days, calls_per_day, circle_size,
            premium_fraction, seed, start_date,
        )
    )
    return database.create_table_from_rows(
        table_name,
        CALL_COLUMNS,
        rows,
        (
            SqlType.VARCHAR,
            SqlType.VARCHAR,
            SqlType.DATE,
            SqlType.INTEGER,
            SqlType.INTEGER,
            SqlType.REAL,
            SqlType.VARCHAR,
        ),
        replace=True,
    )
