"""The big-store Purchase scenario (Section 2 of the paper).

:func:`load_purchase_figure1` loads the *exact* eight-tuple table of
Figure 1, which the FIG1/FIG2 experiments reproduce verbatim.
:func:`load_purchase_synthetic` scales the same scenario up for the
performance benches: customers make several dated transactions, each
containing a basket of priced items, so every clause of the running
example (grouping by customer, clustering by date, price-based mining
conditions) remains meaningful at any size.
"""

from __future__ import annotations

import datetime
import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.sqlengine.engine import Database
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

#: schema of the (non-normalized) Purchase table of Figure 1
PURCHASE_COLUMNS = ("tr", "customer", "item", "date", "price", "qty")

_PURCHASE_TYPES = (
    SqlType.INTEGER,
    SqlType.VARCHAR,
    SqlType.VARCHAR,
    SqlType.DATE,
    SqlType.REAL,
    SqlType.INTEGER,
)


def figure1_rows() -> List[Tuple]:
    """The eight tuples of Figure 1, in the paper's order."""
    d = datetime.date
    return [
        (1, "cust1", "ski_pants", d(1995, 12, 17), 140.0, 1),
        (1, "cust1", "hiking_boots", d(1995, 12, 17), 180.0, 1),
        (2, "cust2", "col_shirts", d(1995, 12, 18), 25.0, 2),
        (2, "cust2", "brown_boots", d(1995, 12, 18), 150.0, 1),
        (2, "cust2", "jackets", d(1995, 12, 18), 300.0, 1),
        (3, "cust1", "jackets", d(1995, 12, 18), 300.0, 1),
        (4, "cust2", "col_shirts", d(1995, 12, 19), 25.0, 3),
        (4, "cust2", "jackets", d(1995, 12, 19), 300.0, 2),
    ]


def load_purchase_figure1(
    database: Database, table_name: str = "Purchase"
) -> Table:
    """Create the Figure 1 Purchase table in *database*."""
    return database.create_table_from_rows(
        table_name,
        PURCHASE_COLUMNS,
        figure1_rows(),
        _PURCHASE_TYPES,
        replace=True,
    )


#: item catalogue of the synthetic store: (name stem, price band)
_CATALOG_BANDS = (
    ("shirt", (15.0, 60.0)),
    ("socks", (5.0, 20.0)),
    ("belt", (20.0, 80.0)),
    ("boots", (90.0, 220.0)),
    ("jacket", (120.0, 400.0)),
    ("skis", (200.0, 600.0)),
)


def _purchase_row_stream(
    customers: int,
    days: int,
    transactions_per_customer: int,
    items_per_transaction: int,
    catalog_size: int,
    seed: int,
    start_date: Optional[datetime.date],
) -> Iterator[Tuple]:
    """Yield synthetic Purchase rows one at a time, in table order.

    Single RNG path shared by :func:`load_purchase_synthetic` and
    :func:`iter_purchase_rows`, so chunked and materialized generation
    produce identical rows.
    """
    rng = random.Random(seed)
    start = start_date or datetime.date(1995, 1, 1)

    catalog: List[Tuple[str, float]] = []
    for index in range(catalog_size):
        stem, (low, high) = _CATALOG_BANDS[index % len(_CATALOG_BANDS)]
        price = round(rng.uniform(low, high), 2)
        catalog.append((f"{stem}_{index}", price))

    transaction_id = 0
    for customer_index in range(customers):
        customer = f"cust{customer_index + 1}"
        for _ in range(transactions_per_customer):
            transaction_id += 1
            date = start + datetime.timedelta(days=rng.randrange(days))
            basket_size = max(1, round(rng.gauss(items_per_transaction, 1.5)))
            chosen = set()
            for _ in range(basket_size):
                # Quadratic skew towards the head of the catalogue.
                index = int(catalog_size * rng.random() ** 2)
                chosen.add(min(index, catalog_size - 1))
            for index in sorted(chosen):
                item, price = catalog[index]
                yield (
                    transaction_id,
                    customer,
                    item,
                    date,
                    price,
                    rng.randint(1, 3),
                )


def iter_purchase_rows(
    customers: int = 50,
    days: int = 10,
    transactions_per_customer: int = 4,
    items_per_transaction: int = 4,
    catalog_size: int = 60,
    seed: int = 7,
    start_date: Optional[datetime.date] = None,
    chunk_size: int = 10_000,
) -> Iterator[List[Tuple]]:
    """Yield synthetic Purchase rows in chunks of ``chunk_size``.

    Bounded-memory counterpart of :func:`load_purchase_synthetic`
    (same parameters, same seed, identical rows): peak memory is one
    chunk plus the item catalogue, so million-transaction stores can be
    streamed into external sinks or per-shard loads.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    stream = _purchase_row_stream(
        customers, days, transactions_per_customer, items_per_transaction,
        catalog_size, seed, start_date,
    )
    chunk: List[Tuple] = []
    for row in stream:
        chunk.append(row)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def iter_drift_appends(
    batches: int = 5,
    transactions_per_batch: int = 40,
    items_per_transaction: int = 4,
    catalog_size: int = 60,
    drift: float = 0.15,
    seed: int = 7,
    start_tr: int = 0,
    start_date: Optional[datetime.date] = None,
) -> Iterator[List[Tuple]]:
    """Yield ``batches`` append batches of Purchase rows whose item
    popularity *drifts* between batches.

    Batch ``b`` draws items from a popularity window centred at
    ``b * drift * catalog_size`` (wrapping), so itemsets frequent in
    early batches sink below the support threshold later while fresh
    ones rise above it — exactly the border-crossing traffic an
    incremental REFRESH has to recount.  Transaction ids continue from
    ``start_tr`` (pass the current ``MAX(tr)``) so appended rows never
    collide with the already-mined groups; prices stay fixed per item
    as in :func:`load_purchase_synthetic`.
    """
    if batches <= 0:
        raise ValueError("batches must be positive")
    rng = random.Random(seed)
    start = start_date or datetime.date(1998, 1, 1)

    catalog: List[Tuple[str, float]] = []
    for index in range(catalog_size):
        stem, (low, high) = _CATALOG_BANDS[index % len(_CATALOG_BANDS)]
        price = round(rng.uniform(low, high), 2)
        catalog.append((f"{stem}_{index}", price))

    transaction_id = start_tr
    for batch_index in range(batches):
        centre = int(batch_index * drift * catalog_size)
        rows: List[Tuple] = []
        for _ in range(transactions_per_batch):
            transaction_id += 1
            customer = f"cust{rng.randint(1, max(2, catalog_size // 2))}"
            date = start + datetime.timedelta(days=batch_index)
            basket_size = max(
                1, round(rng.gauss(items_per_transaction, 1.5))
            )
            chosen = set()
            for _ in range(basket_size):
                # same quadratic skew as the base stream, shifted to
                # the batch's popularity centre (wrapping)
                offset = int(catalog_size * rng.random() ** 2)
                chosen.add((centre + offset) % catalog_size)
            for index in sorted(chosen):
                item, price = catalog[index]
                rows.append(
                    (
                        transaction_id,
                        customer,
                        item,
                        date,
                        price,
                        rng.randint(1, 3),
                    )
                )
        yield rows


def load_purchase_synthetic(
    database: Database,
    customers: int = 50,
    days: int = 10,
    transactions_per_customer: int = 4,
    items_per_transaction: int = 4,
    catalog_size: int = 60,
    seed: int = 7,
    table_name: str = "Purchase",
    start_date: Optional[datetime.date] = None,
) -> Table:
    """A scalable Purchase table with the Figure 1 schema.

    Item popularity is skewed (low item indices are bought more often)
    so that rules with non-trivial support exist at every scale; prices
    are drawn per item from its catalogue band and then fixed, keeping
    price-based mining conditions consistent across tuples.
    """
    rows = list(
        _purchase_row_stream(
            customers, days, transactions_per_customer,
            items_per_transaction, catalog_size, seed, start_date,
        )
    )
    return database.create_table_from_rows(
        table_name, PURCHASE_COLUMNS, rows, _PURCHASE_TYPES, replace=True
    )
