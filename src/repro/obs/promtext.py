"""Prometheus text exposition format (version 0.0.4).

Renders a :class:`~repro.obs.metrics.MetricsRegistry` into the plain
``# HELP`` / ``# TYPE`` / sample-line format every Prometheus-
compatible scraper understands.  Histograms expand into cumulative
``_bucket{le="..."}`` series plus ``_sum`` and ``_count``, exactly as
the exposition spec requires, so the monitoring endpoint can be pasted
straight into a scrape config.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.obs.metrics import HistogramState, MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The complete ``/metrics`` payload for *registry*."""
    lines: List[str] = []
    for metric in registry.collect():
        help_text = metric.help or metric.name
        lines.append(f"# HELP {metric.name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for key, sample in metric.samples():
            labels = dict(zip(metric.labelnames, key))
            if isinstance(sample, HistogramState):
                _render_histogram(lines, metric, labels, sample)
            else:
                lines.append(
                    f"{metric.name}{_label_str(labels)} {_format(sample)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(
    lines: List[str],
    metric: Any,
    labels: Dict[str, str],
    state: HistogramState,
) -> None:
    cumulative = state.cumulative()
    bounds = [_format(b) for b in metric.buckets] + ["+Inf"]
    for bound, count in zip(bounds, cumulative):
        bucket_labels = dict(labels)
        bucket_labels["le"] = bound
        lines.append(
            f"{metric.name}_bucket{_label_str(bucket_labels)} {count}"
        )
    lines.append(f"{metric.name}_sum{_label_str(labels)} {_format(state.sum)}")
    lines.append(f"{metric.name}_count{_label_str(labels)} {state.count}")


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format(value: Any) -> str:
    """Sample-value formatting: integral floats render without the
    trailing ``.0`` so counters read naturally."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
