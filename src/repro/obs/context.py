"""Trace context: correlation ids threaded through runs, jobs, workers.

Every run (or job) gets a :class:`TraceContext` carrying a
``trace_id`` — a 16-hex-digit random id minted once at the outermost
entry point (``JobService._execute`` for HTTP jobs,
``MiningSystem.run``/``refresh`` for direct calls) — plus the optional
``job_id``/``run_id`` correlators.  The context is installed in a
thread-local (:func:`activated`), so everything downstream — spans,
JSON log lines, slow-query entries, run-history records — picks the
ids up without plumbing them through every signature.  Threads are the
right scope: concurrent job workers each activate their own context,
while the engine work a job performs stays on the worker's thread.

Child shard processes cannot see the parent's thread-local.  The
trace id travels to them through the pool initializer
(:mod:`repro.parallel`), and each worker records its spans into a
:class:`ChildTracer` — a dependency-free event list with the worker's
pid and a *wall-clock origin*.  The parent cannot compare
``time.perf_counter()`` values across processes (the epoch is
per-process on some platforms), so child events carry offsets relative
to the child's own perf origin, and the export bundle pins that origin
to ``time.time()``; the parent tracer aligns the bundle into its own
timeline through the wall-clock delta (:meth:`Tracer.splice
<repro.obs.spans.Tracer.splice>`).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, collision-negligible)."""
    return uuid.uuid4().hex[:16]


@dataclass
class TraceContext:
    """The correlation ids of one logical run."""

    trace_id: str
    #: job id when the run executes inside the job service
    job_id: Optional[str] = None
    #: the system's 1-based execution number, set once the run starts
    run_id: Optional[int] = None

    def fields(self) -> Dict[str, Any]:
        """The non-None ids, ready to merge into a log record."""
        out: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.job_id is not None:
            out["job_id"] = self.job_id
        if self.run_id is not None:
            out["run_id"] = self.run_id
        return out


_active = threading.local()


def current() -> Optional[TraceContext]:
    """The context active on this thread (None outside any run)."""
    return getattr(_active, "context", None)


@contextmanager
def activated(context: TraceContext) -> Iterator[TraceContext]:
    """Install *context* as this thread's active context for the block.

    Nested activations stack: the previous context is restored on
    exit, so a job that triggers a nested run keeps its own ids."""
    previous = getattr(_active, "context", None)
    _active.context = context
    try:
        yield context
    finally:
        _active.context = previous


@contextmanager
def ensure(**fields: Any) -> Iterator[TraceContext]:
    """The active context, or a freshly minted one for the block.

    The entry-point helper: outermost callers (a direct
    ``MiningSystem.run``) get a new trace id; nested ones (the same
    run reached through the job service, which already activated a
    context) reuse what is active."""
    context = current()
    if context is not None:
        yield context
        return
    with activated(TraceContext(trace_id=new_trace_id(), **fields)) as ctx:
        yield ctx


class ChildTracer:
    """Minimal span recorder for shard worker processes.

    Workers cannot append to the parent's :class:`Tracer` — they run
    in another process.  Instead each phase function records its spans
    here and ships :meth:`export` back with the shard result; the
    parent splices the events under the phase span.  Events carry
    starts relative to the worker's own ``perf_counter`` origin plus
    per-span CPU time (``time.process_time`` is per-process, so in a
    single-task worker the delta is genuinely the span's CPU).
    """

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id
        self.pid = os.getpid()
        #: wall-clock instant of the perf origin — the cross-process
        #: alignment anchor (perf_counter epochs differ per process)
        self.wall_origin = time.time()
        self.perf_origin = time.perf_counter()
        self.events: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)
        self._stack: List[str] = []

    @contextmanager
    def span(self, name: str, category: str = "",
             **args: Any) -> Iterator[Dict[str, Any]]:
        span_id = f"w{self.pid}-{next(self._ids)}"
        parent_id = self._stack[-1] if self._stack else None
        start = time.perf_counter() - self.perf_origin
        cpu_start = time.process_time()
        event: Dict[str, Any] = {
            "id": span_id,
            "parent": parent_id,
            "name": name,
            "category": category,
            "start": start,
            "args": args,
        }
        self._stack.append(span_id)
        try:
            yield event
        finally:
            self._stack.pop()
            event["seconds"] = (
                time.perf_counter() - self.perf_origin - start
            )
            event["cpu"] = time.process_time() - cpu_start
            self.events.append(event)

    def export(self) -> Optional[Dict[str, Any]]:
        """The picklable bundle returned with a shard result (None
        when nothing was recorded — keeps result tuples small)."""
        if not self.events:
            return None
        return {
            "pid": self.pid,
            "trace_id": self.trace_id,
            "wall_origin": self.wall_origin,
            "events": self.events,
        }
