"""Hierarchical spans and a counter/gauge registry.

One :class:`Tracer` instance accompanies a pipeline run (or a whole
shell session).  Components open *spans* around units of work —
``translator``, ``preprocessor.Q4``, ``engine.Select`` — which nest by
wall-clock containment, and bump *counters* (monotonic totals: faults,
retries, cache hits) or set *gauges* (last-value observations: group
counts, bitmap sizes).  The recorded spans feed three surfaces:

* the Chrome trace-event export (:mod:`repro.obs.export`),
* the consolidated end-of-run report (:mod:`repro.obs.report`),
* per-query ``EXPLAIN ANALYZE`` captures attached as span arguments.

Zero overhead when disabled: a disabled tracer hands out one shared
no-op span object and every recording method returns immediately after
a single attribute check, so the hot path (one check per SQL
statement) costs an ``if`` and nothing else.  :data:`NULL_TRACER` is
the process-wide disabled instance used as the default everywhere.

An enabled tracer can additionally feed a
:class:`~repro.obs.metrics.MetricsRegistry`: every span close observes
the ``repro_span_seconds`` histogram (plus ``repro_span_cpu_seconds``
and ``repro_span_peak_bytes`` when resource profiling is on), counter
bumps and numeric gauges mirror one-to-one under sanitized names, so
serving mode aggregates across runs what the trace records within one.

Correlation (:mod:`repro.obs.context`): every span carries a stable
``span_id``, its ``parent_id`` (per-thread open-span stack, so
concurrent job workers nest correctly) and the ``trace_id`` of the
active :class:`~repro.obs.context.TraceContext`.  Shard worker spans
recorded in child processes splice into the parent tracer through
:meth:`Tracer.splice`, aligned via wall-clock origins.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs import context as obs_context
from repro.obs import profile
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


class Span:
    """One timed unit of work.

    Usable as a context manager (``with tracer.span(...) as s:``) or
    through explicit ``begin``/``end`` when the unit does not map to a
    lexical block.  ``args`` carries structured details (query purpose,
    captured plans, row counts) into the trace export.
    """

    __slots__ = (
        "name", "category", "start", "end", "depth", "args", "_tracer",
        "span_id", "parent_id", "trace_id", "pid", "tid",
        "cpu", "peak_bytes", "_cpu_start", "_mem_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        start: float,
        depth: int,
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.args = args
        #: correlation ids (assigned by the tracer on begin/splice)
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        #: recording process/thread (real ids: worker spans keep the
        #: child pid so the trace export lays out per-worker lanes)
        self.pid: int = 0
        self.tid: int = 0
        #: resource attribution (None when profiling is off)
        self.cpu: Optional[float] = None
        self.peak_bytes: Optional[int] = None
        self._cpu_start: Optional[float] = None
        self._mem_start: profile.MemorySample = None

    @property
    def seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **args: Any) -> None:
        """Attach structured details to the span."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._tracer.end(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"seconds={self.seconds:.6f})"
        )


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (one shared
    instance: no allocation on the disabled path)."""

    __slots__ = ()

    def annotate(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Instant:
    """A point event (no duration): process-flow markers."""

    __slots__ = ("name", "category", "at", "args", "trace_id")

    def __init__(self, name: str, category: str, at: float, args: Dict[str, Any]):
        self.name = name
        self.category = category
        self.at = at
        self.args = args
        self.trace_id: Optional[str] = None


class Tracer:
    """Span sink plus counter/gauge registry for one run.

    ``analyze=True`` additionally asks the SQL layer to capture
    per-operator row counts and timings (``EXPLAIN ANALYZE``) for every
    query it executes — strictly opt-in, as it wraps every operator's
    row stream.
    """

    def __init__(
        self,
        enabled: bool = True,
        analyze: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry = NULL_REGISTRY,
        profile_cpu: bool = True,
        profile_mem: bool = False,
    ):
        self.enabled = enabled
        self.analyze = analyze and enabled
        #: cross-run aggregation sink; span closes, counters and numeric
        #: gauges mirror into it automatically
        self.metrics = metrics
        self._clock = clock
        #: perf-counter instant the tracer was created (trace epoch)
        self.origin = clock()
        #: wall-clock instant of the same epoch — the anchor that lets
        #: child-process event times (whose perf epochs differ) be
        #: aligned into this tracer's timeline via wall-clock deltas
        self.wall_origin = time.time()
        self.pid = os.getpid()
        #: per-span CPU attribution (time.process_time deltas); cheap
        #: enough to default on for an enabled tracer
        self.profile_cpu = profile_cpu and enabled
        #: per-span peak-memory attribution (tracemalloc); opt-in —
        #: tracing every allocation has real cost
        self.profile_mem = profile_mem and enabled
        if self.profile_mem:
            profile.start_memory_tracking()
        #: completed spans, in end order
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Any] = {}
        self._ids = itertools.count(1)
        self._open = threading.local()

    def _stack(self) -> List[Span]:
        """This thread's open-span stack (parent/depth bookkeeping —
        per thread so concurrent job workers nest independently)."""
        stack = getattr(self._open, "stack", None)
        if stack is None:
            stack = []
            self._open.stack = stack
        return stack

    # -- spans ----------------------------------------------------------

    def begin(self, name: str, category: str = "", **args: Any):
        """Open a span; pair with :meth:`end` (or use as ``with``)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        span = Span(self, name, category, self._clock(), len(stack), args)
        span.span_id = f"s{next(self._ids)}"
        if stack:
            span.parent_id = stack[-1].span_id
        ctx = obs_context.current()
        if ctx is not None:
            span.trace_id = ctx.trace_id
        span.pid = self.pid
        span.tid = threading.get_ident()
        if self.profile_cpu:
            span._cpu_start = time.process_time()
        if self.profile_mem:
            span._mem_start = profile.memory_sample()
        stack.append(span)
        return span

    #: ``span()`` reads better at call sites that use ``with``
    span = begin

    def end(self, span: Any) -> float:
        """Close *span*; returns its duration in seconds."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return 0.0
        if span.end is None:
            span.end = self._clock()
            if span._cpu_start is not None:
                span.cpu = time.process_time() - span._cpu_start
            if span._mem_start is not None:
                span.peak_bytes = profile.peak_bytes_since(span._mem_start)
            stack = self._stack()
            if stack and stack[-1] is span:
                stack.pop()
            elif span in stack:  # defensive: out-of-order close
                stack.remove(span)
            self.spans.append(span)
            if self.metrics.enabled:
                self.metrics.observe_span(span)
        return span.seconds

    def splice(self, bundle: Optional[Dict[str, Any]],
               parent: Any = None) -> List[Span]:
        """Adopt a :class:`~repro.obs.context.ChildTracer` export from
        a shard worker process.

        Child event times are relative to the child's own perf origin;
        the bundle's ``wall_origin`` pins that origin to wall-clock
        time, so the parent places events at ``origin + (child wall
        origin - own wall origin) + relative start`` — cross-process
        perf-counter epochs never get compared directly.  Events keep
        the worker's pid (their own trace lane) and parent into
        *parent* when they have no recorded parent of their own."""
        if not self.enabled or not bundle:
            return []
        base = self.origin + (bundle["wall_origin"] - self.wall_origin)
        parent_span = parent if isinstance(parent, Span) else None
        depth = parent_span.depth + 1 if parent_span is not None else 0
        trace_id = bundle.get("trace_id") or (
            parent_span.trace_id if parent_span is not None else None
        )
        adopted: List[Span] = []
        for event in bundle.get("events", ()):
            span = Span(
                self,
                event["name"],
                event.get("category", ""),
                base + event["start"],
                depth,
                dict(event.get("args") or {}),
            )
            span.end = span.start + event.get("seconds", 0.0)
            span.span_id = event.get("id")
            span.parent_id = event.get("parent")
            if span.parent_id is None and parent_span is not None:
                span.parent_id = parent_span.span_id
            span.trace_id = trace_id
            span.pid = bundle.get("pid", 0)
            span.tid = event.get("tid", 1)
            span.cpu = event.get("cpu")
            span.peak_bytes = event.get("peak_bytes")
            self.spans.append(span)
            if self.metrics.enabled:
                self.metrics.observe_span(span)
            adopted.append(span)
        return adopted

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        instant = Instant(name, category, self._clock(), args)
        ctx = obs_context.current()
        if ctx is not None:
            instant.trace_id = ctx.trace_id
        self.instants.append(instant)

    # -- registry -------------------------------------------------------

    def bump(self, counter: str, amount: float = 1) -> None:
        """Increment a monotonic counter."""
        if not self.enabled or not amount:
            return
        self.counters[counter] = self.counters.get(counter, 0) + amount
        if self.metrics.enabled:
            self.metrics.trace_counter(counter, amount)

    def gauge(self, name: str, value: Any, **labels: Any) -> None:
        """Set a last-value observation.

        Labels qualify the stored key — ``gauge("rules.decoded", 12,
        run=3)`` lands under ``rules.decoded{run=3}`` — so repeated
        runs in one session stop overwriting each other.  The metrics
        mirror intentionally drops the labels: a registry gauge is
        *current* value; the scrape history is the Prometheus server's
        job, and mirroring per-run labels would grow cardinality
        without bound in a long-lived serving process.
        """
        if not self.enabled:
            return
        key = name
        if labels:
            qualifier = ",".join(
                f"{k}={labels[k]}" for k in sorted(labels)
            )
            key = f"{name}{{{qualifier}}}"
        self.gauges[key] = value
        if self.metrics.enabled:
            self.metrics.trace_gauge(name, value)

    # -- aggregation ----------------------------------------------------

    def category_seconds(self) -> Dict[str, float]:
        """Total span seconds per category.  Nested spans of the *same*
        category double-count by design (each category is summed
        independently); the component spans the report leads with sit
        at the top of the hierarchy."""
        out: Dict[str, float] = {}
        for span in self.spans:
            key = span.category or span.name
            out[key] = out.get(key, 0.0) + span.seconds
        return out

    def category_cpu_seconds(self) -> Dict[str, float]:
        """Total attributed CPU seconds per category (spans recorded
        without CPU profiling contribute nothing)."""
        out: Dict[str, float] = {}
        for span in self.spans:
            if span.cpu is None:
                continue
            key = span.category or span.name
            out[key] = out.get(key, 0.0) + span.cpu
        return out

    def slowest(self, limit: int = 10) -> List[Span]:
        return sorted(self.spans, key=lambda s: -s.seconds)[:limit]


#: the shared disabled tracer — default value of every ``tracer``
#: parameter in the pipeline, so the un-traced path never allocates
NULL_TRACER = Tracer(enabled=False)
