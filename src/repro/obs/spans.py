"""Hierarchical spans and a counter/gauge registry.

One :class:`Tracer` instance accompanies a pipeline run (or a whole
shell session).  Components open *spans* around units of work —
``translator``, ``preprocessor.Q4``, ``engine.Select`` — which nest by
wall-clock containment, and bump *counters* (monotonic totals: faults,
retries, cache hits) or set *gauges* (last-value observations: group
counts, bitmap sizes).  The recorded spans feed three surfaces:

* the Chrome trace-event export (:mod:`repro.obs.export`),
* the consolidated end-of-run report (:mod:`repro.obs.report`),
* per-query ``EXPLAIN ANALYZE`` captures attached as span arguments.

Zero overhead when disabled: a disabled tracer hands out one shared
no-op span object and every recording method returns immediately after
a single attribute check, so the hot path (one check per SQL
statement) costs an ``if`` and nothing else.  :data:`NULL_TRACER` is
the process-wide disabled instance used as the default everywhere.

An enabled tracer can additionally feed a
:class:`~repro.obs.metrics.MetricsRegistry`: every span close observes
the ``repro_span_seconds`` histogram, counter bumps and numeric gauges
mirror one-to-one under sanitized names, so serving mode aggregates
across runs what the trace records within one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry


class Span:
    """One timed unit of work.

    Usable as a context manager (``with tracer.span(...) as s:``) or
    through explicit ``begin``/``end`` when the unit does not map to a
    lexical block.  ``args`` carries structured details (query purpose,
    captured plans, row counts) into the trace export.
    """

    __slots__ = ("name", "category", "start", "end", "depth", "args", "_tracer")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        start: float,
        depth: int,
        args: Dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.depth = depth
        self.args = args

    @property
    def seconds(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def annotate(self, **args: Any) -> None:
        """Attach structured details to the span."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._tracer.end(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, category={self.category!r}, "
            f"seconds={self.seconds:.6f})"
        )


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (one shared
    instance: no allocation on the disabled path)."""

    __slots__ = ()

    def annotate(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Instant:
    """A point event (no duration): process-flow markers."""

    __slots__ = ("name", "category", "at", "args")

    def __init__(self, name: str, category: str, at: float, args: Dict[str, Any]):
        self.name = name
        self.category = category
        self.at = at
        self.args = args


class Tracer:
    """Span sink plus counter/gauge registry for one run.

    ``analyze=True`` additionally asks the SQL layer to capture
    per-operator row counts and timings (``EXPLAIN ANALYZE``) for every
    query it executes — strictly opt-in, as it wraps every operator's
    row stream.
    """

    def __init__(
        self,
        enabled: bool = True,
        analyze: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry = NULL_REGISTRY,
    ):
        self.enabled = enabled
        self.analyze = analyze and enabled
        #: cross-run aggregation sink; span closes, counters and numeric
        #: gauges mirror into it automatically
        self.metrics = metrics
        self._clock = clock
        #: perf-counter instant the tracer was created (trace epoch)
        self.origin = clock()
        #: completed spans, in end order
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, Any] = {}
        self._depth = 0

    # -- spans ----------------------------------------------------------

    def begin(self, name: str, category: str = "", **args: Any):
        """Open a span; pair with :meth:`end` (or use as ``with``)."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(self, name, category, self._clock(), self._depth, args)
        self._depth += 1
        return span

    #: ``span()`` reads better at call sites that use ``with``
    span = begin

    def end(self, span: Any) -> float:
        """Close *span*; returns its duration in seconds."""
        if span is NULL_SPAN or not isinstance(span, Span):
            return 0.0
        if span.end is None:
            span.end = self._clock()
            self._depth = max(0, self._depth - 1)
            self.spans.append(span)
            if self.metrics.enabled:
                self.metrics.observe_span(span)
        return span.seconds

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        self.instants.append(Instant(name, category, self._clock(), args))

    # -- registry -------------------------------------------------------

    def bump(self, counter: str, amount: float = 1) -> None:
        """Increment a monotonic counter."""
        if not self.enabled or not amount:
            return
        self.counters[counter] = self.counters.get(counter, 0) + amount
        if self.metrics.enabled:
            self.metrics.trace_counter(counter, amount)

    def gauge(self, name: str, value: Any, **labels: Any) -> None:
        """Set a last-value observation.

        Labels qualify the stored key — ``gauge("rules.decoded", 12,
        run=3)`` lands under ``rules.decoded{run=3}`` — so repeated
        runs in one session stop overwriting each other.  The metrics
        mirror intentionally drops the labels: a registry gauge is
        *current* value; the scrape history is the Prometheus server's
        job, and mirroring per-run labels would grow cardinality
        without bound in a long-lived serving process.
        """
        if not self.enabled:
            return
        key = name
        if labels:
            qualifier = ",".join(
                f"{k}={labels[k]}" for k in sorted(labels)
            )
            key = f"{name}{{{qualifier}}}"
        self.gauges[key] = value
        if self.metrics.enabled:
            self.metrics.trace_gauge(name, value)

    # -- aggregation ----------------------------------------------------

    def category_seconds(self) -> Dict[str, float]:
        """Total span seconds per category.  Nested spans of the *same*
        category double-count by design (each category is summed
        independently); the component spans the report leads with sit
        at the top of the hierarchy."""
        out: Dict[str, float] = {}
        for span in self.spans:
            key = span.category or span.name
            out[key] = out.get(key, 0.0) + span.seconds
        return out

    def slowest(self, limit: int = 10) -> List[Span]:
        return sorted(self.spans, key=lambda s: -s.seconds)[:limit]


#: the shared disabled tracer — default value of every ``tracer``
#: parameter in the pipeline, so the un-traced path never allocates
NULL_TRACER = Tracer(enabled=False)
