"""Structured JSON logging (one object per line).

The serving-mode counterpart of the shell's human-readable output:
every event is a single JSON object on its own line (``ts``, ``level``,
``event``, plus event-specific fields), so log shippers and ``jq`` can
consume a long-running ``repro serve`` session without parsing prose.
Enabled by the ``--log-json`` CLI flag; the default stream is stderr
so statement results on stdout stay machine-separable.

Every line is stamped with the active trace context
(``trace_id``/``job_id``/``run_id``, when one is active), so log
lines, spans and run-history records of the same execution correlate
on one id.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Any, Callable, Optional, TextIO

from repro.obs import context as obs_context


class JsonLogger:
    """Thread-safe newline-delimited JSON event writer."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.time,
    ):
        self._stream = stream
        self._clock = clock
        self._lock = threading.Lock()

    @property
    def stream(self) -> TextIO:
        # resolved lazily so ``JsonLogger()`` built before a test
        # redirects stderr still writes to the redirected stream
        return self._stream if self._stream is not None else sys.stderr

    def log(self, event: str, level: str = "info", **fields: Any) -> None:
        record = {"ts": round(self._clock(), 6), "level": level,
                  "event": event}
        record.update(fields)
        context = obs_context.current()
        if context is not None:
            # correlation ids; explicit fields win over the ambient ones
            for key, value in context.fields().items():
                record.setdefault(key, value)
        line = json.dumps(record, default=repr, separators=(",", ":"))
        with self._lock:
            stream = self.stream
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError, io.UnsupportedOperation):
                pass  # closed/broken stream must never take a run down

    def error(self, event: str, **fields: Any) -> None:
        self.log(event, level="error", **fields)
