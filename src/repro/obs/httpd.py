"""Monitoring HTTP server (stdlib ``http.server``).

Serves the observability surfaces of a running mining system on a side
thread, so a long-lived ``repro serve`` process is scrape-able like any
production service:

* ``GET /metrics``    — Prometheus text exposition of the registry
* ``GET /healthz``    — 200 while healthy, 503 while the last run is
  failing (JSON body with the health snapshot either way)
* ``GET /stats.json`` — registry snapshot + slow-query log + health
* ``GET /trace.json`` — Chrome trace-event JSON of the session so far
* ``GET /runs``       — run-history summaries from the persistent
  journal (``?limit=&kind=``), when a ``runlog`` is mounted;
  ``/runs/<id>`` returns one full record, ``/runs/<id>/trace`` the
  run's own Chrome trace slice
* ``/jobs...``        — the REST job API (submit / poll / result /
  cancel), when an ``api`` router (:class:`repro.jobs.api.JobsApi`)
  is mounted; POST and DELETE are accepted on those paths only

Thread model: :class:`ThreadingHTTPServer` handles each scrape on its
own thread; the registry, health state and slow log are internally
locked, so concurrent scrapes during an active run read consistent
values.  No external dependencies — stdlib only.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import CONTENT_TYPE, render_prometheus


class HealthState:
    """Thread-safe run-state tracker behind ``/healthz``.

    ``begin``/``success``/``failure`` bracket every MINE RULE run;
    the server answers 503 from the first failed run until the next
    success, which is what a load balancer draining a faulty replica
    needs to see.
    """

    def __init__(self, clock: Callable[[], float] = time.time):
        self._lock = threading.Lock()
        self._clock = clock
        self.healthy = True
        self.active = 0
        self.runs = 0
        self.failures = 0
        self.last_error: Optional[str] = None
        self.started_at = clock()

    def begin(self) -> None:
        with self._lock:
            self.active += 1

    def success(self) -> None:
        with self._lock:
            self.active = max(0, self.active - 1)
            self.runs += 1
            self.healthy = True
            self.last_error = None

    def failure(self, error: Any) -> None:
        with self._lock:
            self.active = max(0, self.active - 1)
            self.runs += 1
            self.failures += 1
            self.healthy = False
            self.last_error = str(error)

    @property
    def ok(self) -> bool:
        with self._lock:
            return self.healthy

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "status": "ok" if self.healthy else "failing",
                "active_runs": self.active,
                "runs": self.runs,
                "failures": self.failures,
                "last_error": self.last_error,
                "uptime_seconds": round(self._clock() - self.started_at, 3),
            }


class MonitoringServer:
    """The ``/metrics`` + ``/healthz`` + ``/stats.json`` +
    ``/trace.json`` endpoint on a daemon thread.

    ``port=0`` binds an ephemeral port (tests); :attr:`port` reports
    the bound one.  ``stats`` and ``trace`` are optional callables
    returning the ``/stats.json`` dict and the ``/trace.json`` body —
    endpoints without a provider answer 404.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        health: Optional[HealthState] = None,
        stats: Optional[Callable[[], Dict[str, Any]]] = None,
        trace: Optional[Callable[[], str]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        api: Optional[Any] = None,
        runlog: Optional[Any] = None,
    ):
        self.registry = registry
        self.health = health if health is not None else HealthState()
        self._stats = stats
        self._trace = trace
        #: run-history journal (:class:`repro.obs.runlog.RunLog`)
        #: behind ``/runs``; None leaves the endpoints unmounted
        self.runlog = runlog
        #: optional request router (``handle(method, path, body, query)
        #: -> (code, payload) | None``); owns every /jobs path
        self.api = api
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def start(self) -> "MonitoringServer":
        if self._httpd is not None:
            return self
        handler = self._make_handler()
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-monitoring",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MonitoringServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------

    def _make_handler(self):
        server = self

        class Handler(BaseHTTPRequestHandler):
            # the monitor must not spam the serving process's stderr
            def log_message(self, *args: Any) -> None:
                pass

            def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
                path = self.path.split("?", 1)[0]
                try:
                    if self._maybe_api("GET"):
                        return
                    if path == "/metrics":
                        self._send(
                            200,
                            CONTENT_TYPE,
                            render_prometheus(server.registry),
                        )
                    elif path == "/healthz":
                        snapshot = server.health.snapshot()
                        code = 200 if snapshot["status"] == "ok" else 503
                        self._send_json(code, snapshot)
                    elif path == "/stats.json":
                        if server._stats is None:
                            self._send_json(
                                404, {"error": "no stats provider"}
                            )
                        else:
                            self._send_json(200, server._stats())
                    elif path == "/trace.json":
                        if server._trace is None:
                            self._send_json(
                                404, {"error": "no trace provider"}
                            )
                        else:
                            self._send(
                                200, "application/json", server._trace()
                            )
                    elif path == "/runs" or path.startswith("/runs/"):
                        self._runs(path)
                    else:
                        self._send_json(
                            404,
                            {
                                "error": f"unknown path {path!r}",
                                "endpoints": [
                                    "/metrics",
                                    "/healthz",
                                    "/stats.json",
                                    "/trace.json",
                                ]
                                + (
                                    ["/runs"]
                                    if server.runlog is not None
                                    else []
                                )
                                + (
                                    ["/jobs"]
                                    if server.api is not None
                                    else []
                                ),
                            },
                        )
                except BrokenPipeError:  # scraper went away mid-answer
                    pass
                except Exception as exc:  # defensive: a provider bug
                    # must yield a 500, not a hung connection
                    try:
                        self._send_json(500, {"error": str(exc)})
                    except Exception:
                        pass

            def _runs(self, path: str) -> None:
                """The run-history endpoints over the mounted journal."""
                runlog = server.runlog
                if runlog is None:
                    self._send_json(404, {"error": "no run history"})
                    return
                if path == "/runs":
                    _, _, raw_query = self.path.partition("?")
                    limit: Optional[int] = None
                    kind: Optional[str] = None
                    for chunk in raw_query.split("&"):
                        key, _, value = chunk.partition("=")
                        if key == "limit" and value.isdigit():
                            limit = int(value)
                        elif key == "kind" and value:
                            kind = value
                    runs = runlog.list(limit=limit, kind=kind)
                    self._send_json(
                        200, {"runs": runs, "total": len(runlog)}
                    )
                    return
                rest = path[len("/runs/"):]
                run_id, _, tail = rest.partition("/")
                if tail not in ("", "trace"):
                    self._send_json(
                        404, {"error": f"unknown path {path!r}"}
                    )
                    return
                if tail == "trace":
                    events = runlog.trace(run_id)
                    if events is None:
                        self._send_json(
                            404,
                            {"error": f"no trace for run {run_id!r}"},
                        )
                        return
                    self._send_json(
                        200,
                        {
                            "traceEvents": events,
                            "displayTimeUnit": "ms",
                        },
                    )
                    return
                record = runlog.get(run_id)
                if record is None:
                    self._send_json(
                        404, {"error": f"no such run: {run_id!r}"}
                    )
                    return
                self._send_json(200, record)

            def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
                self._mutating("POST")

            def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
                self._mutating("DELETE")

            def _mutating(self, method: str) -> None:
                try:
                    if not self._maybe_api(method):
                        self._send_json(
                            404,
                            {"error": f"{method} {self.path!r} not routed"},
                        )
                except BrokenPipeError:
                    pass
                except Exception as exc:
                    try:
                        self._send_json(500, {"error": str(exc)})
                    except Exception:
                        pass

            def _maybe_api(self, method: str) -> bool:
                """Offer the request to the mounted API router; True
                when it produced the response."""
                if server.api is None:
                    return False
                path, _, raw_query = self.path.partition("?")
                query: Dict[str, str] = {}
                if raw_query:
                    for chunk in raw_query.split("&"):
                        key, _, value = chunk.partition("=")
                        if key:
                            query[key] = value
                body = None
                length = int(self.headers.get("Content-Length") or 0)
                if length:
                    body = self.rfile.read(length)
                response = server.api.handle(method, path, body, query)
                if response is None:
                    return False
                code, payload = response
                self._send_json(code, payload)
                return True

            def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
                self._send(
                    code,
                    "application/json",
                    json.dumps(payload, indent=1, default=repr),
                )

            def _send(self, code: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

        return Handler
