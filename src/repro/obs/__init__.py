"""Unified observability: spans, metrics, logs, trace export, serving.

Replaces the scattered ad-hoc timing of earlier revisions with one
subsystem:

* :class:`Tracer` collects hierarchical spans and registry values;
  :data:`NULL_TRACER` is the shared disabled instance that makes the
  un-traced path a single attribute check.
* :class:`MetricsRegistry` aggregates counters, gauges and histograms
  process-wide (:data:`REGISTRY` is the default instance,
  :data:`NULL_REGISTRY` the disabled null object); a tracer wired with
  ``metrics=`` feeds span durations and counters into it automatically.
* :func:`render_prometheus` renders a registry in Prometheus text
  exposition format 0.0.4; :class:`MonitoringServer` serves it over
  HTTP together with ``/healthz`` (:class:`HealthState`),
  ``/stats.json`` and ``/trace.json``.
* :class:`SlowQueryLog` keeps the latency tail,
  :class:`JsonLogger` emits structured JSON log lines, and
  :func:`write_chrome_trace` / :func:`render_obs_report` export traces.
"""

from repro.obs.context import (
    ChildTracer,
    TraceContext,
    activated,
    current,
    ensure,
    new_trace_id,
)
from repro.obs.export import (
    render_chrome_trace,
    trace_events,
    write_chrome_trace,
)
from repro.obs.httpd import HealthState, MonitoringServer
from repro.obs.jsonlog import JsonLogger
from repro.obs.metrics import (
    NULL_REGISTRY,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    publish_gauge,
    sanitize_metric_name,
)
from repro.obs.promtext import CONTENT_TYPE, render_prometheus
from repro.obs.report import render_obs_report
from repro.obs.runlog import RunLog, statement_fingerprint
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.spans import NULL_SPAN, NULL_TRACER, Instant, Span, Tracer

__all__ = [
    "CONTENT_TYPE",
    "ChildTracer",
    "Counter",
    "Gauge",
    "HealthState",
    "Histogram",
    "Instant",
    "JsonLogger",
    "MetricsRegistry",
    "MonitoringServer",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "REGISTRY",
    "RunLog",
    "Span",
    "SlowQuery",
    "SlowQueryLog",
    "TraceContext",
    "Tracer",
    "activated",
    "current",
    "ensure",
    "new_trace_id",
    "publish_gauge",
    "render_chrome_trace",
    "render_obs_report",
    "render_prometheus",
    "sanitize_metric_name",
    "statement_fingerprint",
    "trace_events",
    "write_chrome_trace",
]
