"""Unified observability: spans, counters/gauges, trace export.

Replaces the scattered ad-hoc timing of earlier revisions with one
subsystem: :class:`Tracer` collects hierarchical spans and registry
values, :func:`write_chrome_trace` exports them in Chrome trace-event
format, and :func:`render_obs_report` renders the consolidated text
report.  :data:`NULL_TRACER` is the shared disabled instance that
makes the un-traced path a single attribute check.
"""

from repro.obs.export import (
    render_chrome_trace,
    trace_events,
    write_chrome_trace,
)
from repro.obs.report import render_obs_report
from repro.obs.spans import NULL_SPAN, NULL_TRACER, Instant, Span, Tracer

__all__ = [
    "Instant",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "render_chrome_trace",
    "render_obs_report",
    "trace_events",
    "write_chrome_trace",
]
