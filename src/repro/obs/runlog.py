"""Persistent run history: an append-only NDJSON journal.

Every completed run — MINE RULE, REFRESH RULES, SQL job — appends one
JSON object (trace id, statement fingerprint, stage timings, resource
totals, outcome, optionally the run's trace events) to the journal
file.  Appending a line is the only write the journal ever performs,
so a crash can at worst truncate the final record; replay tolerates a
torn tail by skipping undecodable lines.

On construction the journal is replayed into a bounded in-memory
index (newest ``capacity`` records), which backs the monitoring
server's ``GET /runs`` / ``GET /runs/<id>`` / ``GET /runs/<id>/trace``
endpoints and rehydrates the job table after a restart — the PR8
follow-up ("restart loses history") closed.  Without a path the log
is memory-only (same API, no persistence), which is what tests and
the default serve mode use.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.obs.context import new_trace_id


def statement_fingerprint(statement: str) -> str:
    """Stable 12-hex digest of a whitespace/case-normalized statement,
    so re-submissions of one query group together across runs."""
    normalized = " ".join(statement.split()).lower()
    return hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:12]


class RunLog:
    """Append-only run journal with a bounded in-memory index.

    ``path=None`` keeps the journal memory-only.  ``capacity`` bounds
    the index (the file itself is never truncated); eviction drops the
    oldest record.  All methods are thread-safe — runs, jobs and
    monitoring scrapes touch the log concurrently.
    """

    def __init__(self, path: Optional[str] = None, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.path = os.fspath(path) if path is not None else None
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: records recovered from an existing journal file
        self.replayed = 0
        #: undecodable lines skipped during replay (torn tail, damage)
        self.corrupt_lines = 0
        if self.path is not None and os.path.exists(self.path):
            self._replay()

    def _replay(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if not isinstance(record, dict) or "id" not in record:
                    self.corrupt_lines += 1
                    continue
                self._remember(record)
                self.replayed += 1

    def _remember(self, record: Dict[str, Any]) -> None:
        self._records[str(record["id"])] = record
        self._records.move_to_end(str(record["id"]))
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)

    # -- write side -----------------------------------------------------

    def record(self, **fields: Any) -> Dict[str, Any]:
        """Append one run record; returns it with ``id``/``at`` filled.

        ``id`` defaults to a fresh trace id; a duplicate id (e.g. a
        retried journal write) gets a ``-N`` suffix rather than
        silently overwriting history."""
        record = dict(fields)
        record.setdefault("id", new_trace_id())
        record.setdefault("at", round(time.time(), 6))
        with self._lock:
            base = str(record["id"])
            run_id = base
            suffix = 2
            while run_id in self._records:
                run_id = f"{base}-{suffix}"
                suffix += 1
            record["id"] = run_id
            self._remember(record)
            if self.path is not None:
                line = json.dumps(
                    record, default=repr, separators=(",", ":")
                )
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return record

    # -- read side ------------------------------------------------------

    def list(
        self,
        limit: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Run summaries, oldest first (the trace payload is elided —
        it can dwarf the rest of the record)."""
        with self._lock:
            records = list(self._records.values())
        if kind is not None:
            records = [r for r in records if r.get("kind") == kind]
        if limit is not None:
            records = records[-limit:]
        return [
            {k: v for k, v in record.items() if k != "trace"}
            for record in records
        ]

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The full record (minus the trace payload) of one run."""
        with self._lock:
            record = self._records.get(run_id)
        if record is None:
            return None
        return {k: v for k, v in record.items() if k != "trace"}

    def trace(self, run_id: str) -> Optional[List[Dict[str, Any]]]:
        """The persisted Chrome trace events of one run, if any."""
        with self._lock:
            record = self._records.get(run_id)
        if record is None:
            return None
        return record.get("trace")

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
