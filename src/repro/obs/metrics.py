"""Process-wide metrics registry: counters, gauges, histograms.

Where :class:`~repro.obs.spans.Tracer` records *one run* (spans with a
beginning and an end), this registry aggregates *across runs* — the
serving-mode view of the system.  Three instrument kinds, all with an
optional labels dimension (``sql_query_seconds{stage="Q3"}``):

* :class:`Counter` — monotonic totals (statements executed, cache
  hits, faults injected);
* :class:`Gauge` — last-value observations (encoded table sizes,
  ``:totg``);
* :class:`Histogram` — latency distributions with configurable bucket
  boundaries, rendered in Prometheus exposition format by
  :mod:`repro.obs.promtext`.

The registry is thread-safe (one lock shared by every instrument), so
a monitoring HTTP server can scrape a consistent snapshot while runs
are in flight.  Zero overhead when disabled: :data:`NULL_REGISTRY` is
the shared disabled instance — its instrument factories hand out one
no-op instrument, and every hot-path hook guards on a single
``registry.enabled`` attribute check, mirroring the ``NULL_TRACER``
contract.

The :class:`Tracer` feeds the registry automatically: every span close
observes the ``repro_span_seconds`` histogram, counters and (numeric)
gauges mirror one-to-one under sanitized names.  The specific
well-known series (per-statement SQL latency, per-Q preprocessor
stages, core-operator counters) are instrumented directly at their
sites, so they exist even when span tracing is off.
"""

from __future__ import annotations

import re
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: default histogram boundaries: 100 microseconds to 10 seconds, the
#: range SQL statements and MINE RULE runs actually occupy
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: byte-scale boundaries (1 KiB .. 1 GiB) for memory histograms
BYTE_BUCKETS: Tuple[float, ...] = (
    1024.0, 16384.0, 65536.0, 262144.0, 1048576.0,
    4194304.0, 16777216.0, 67108864.0, 268435456.0, 1073741824.0,
)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary dotted counter/gauge name into a legal
    Prometheus metric name (``engine.plan_cache_hits`` ->
    ``engine_plan_cache_hits``)."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


class Metric:
    """One metric family: a name, a kind, fixed label names and a
    sample per observed label-value combination."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
    ):
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._lock = lock
        self._samples: "OrderedDict[Tuple[str, ...], Any]" = OrderedDict()

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Snapshot of (label values, sample) pairs."""
        with self._lock:
            return list(self._samples.items())

    def labelsets(self) -> List[Dict[str, str]]:
        with self._lock:
            return [
                dict(zip(self.labelnames, key)) for key in self._samples
            ]


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        with self._lock:
            return self._samples.get(self._key(labels), 0)


class Gauge(Metric):
    """A last-value observation."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0) + amount

    def value(self, **labels: Any) -> Optional[float]:
        with self._lock:
            return self._samples.get(self._key(labels))


class HistogramState:
    """Mutable per-labelset histogram sample: cumulative-ready bucket
    counts (one per boundary plus the +Inf overflow), sum and count."""

    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, boundaries: Tuple[float, ...]) -> None:
        slot = len(boundaries)
        for index, bound in enumerate(boundaries):
            if value <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Bucket counts as Prometheus wants them: cumulative,
        including the +Inf bucket (== count)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out


class Histogram(Metric):
    """A distribution over configurable bucket boundaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Tuple[str, ...],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames, lock)
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError("histogram needs at least one bucket boundary")
        self.buckets = boundaries

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = HistogramState(len(self.buckets))
                self._samples[key] = state
            state.observe(value, self.buckets)

    def state(self, **labels: Any) -> Optional[HistogramState]:
        with self._lock:
            return self._samples.get(self._key(labels))


class _NullInstrument:
    """Shared no-op instrument a disabled registry hands out."""

    __slots__ = ()
    name = ""
    kind = "null"
    labelnames: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        pass

    def set(self, value: float, **labels: Any) -> None:
        pass

    def observe(self, value: float, **labels: Any) -> None:
        pass

    def value(self, **labels: Any) -> float:
        return 0

    def state(self, **labels: Any) -> None:
        return None

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        return []


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create registry of metric families.

    ``counter``/``gauge``/``histogram`` are idempotent: the first call
    for a name creates the family, later calls return the same object
    (and raise :class:`ValueError` if kind or label names disagree —
    two call sites silently feeding differently-shaped series is the
    classic metrics bug).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, Metric]" = OrderedDict()

    # -- instrument factories ------------------------------------------

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def _register(self, cls, name, help_text, labelnames, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, not {labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    # -- read side -----------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """Registered families in registration order (stable scrape
        output)."""
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dump for ``/stats.json``."""
        out: Dict[str, Any] = {}
        for metric in self.collect():
            samples = []
            for key, sample in metric.samples():
                labels = dict(zip(metric.labelnames, key))
                if isinstance(sample, HistogramState):
                    samples.append(
                        {
                            "labels": labels,
                            "count": sample.count,
                            "sum": sample.sum,
                            "buckets": dict(
                                zip(
                                    [str(b) for b in metric.buckets]
                                    + ["+Inf"],
                                    sample.cumulative(),
                                )
                            ),
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": sample})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- tracer feed ---------------------------------------------------

    def observe_span(self, span: Any) -> None:
        """Span close -> histogram observe (the automatic
        :class:`~repro.obs.spans.Tracer` feed).  Spans carrying
        resource attribution additionally feed the CPU-seconds and
        peak-bytes series."""
        if not self.enabled:
            return
        category = span.category or span.name
        self.histogram(
            "repro_span_seconds",
            "Wall seconds of tracer spans by category",
            ("category",),
        ).observe(span.seconds, category=category)
        cpu = getattr(span, "cpu", None)
        if cpu is not None:
            self.histogram(
                "repro_span_cpu_seconds",
                "Attributed CPU seconds of tracer spans by category",
                ("category",),
            ).observe(cpu, category=category)
        peak = getattr(span, "peak_bytes", None)
        if peak is not None:
            self.histogram(
                "repro_span_peak_bytes",
                "Peak traced bytes of tracer spans by category "
                "(tracemalloc; --profile-mem)",
                ("category",),
                buckets=BYTE_BUCKETS,
            ).observe(peak, category=category)

    def trace_counter(self, name: str, amount: float) -> None:
        """Counter mirror for :meth:`Tracer.bump`."""
        if not self.enabled:
            return
        self.counter(
            f"repro_{sanitize_metric_name(name)}_total",
            f"Mirrored tracer counter {name!r}",
        ).inc(amount)

    def trace_gauge(self, name: str, value: Any) -> None:
        """Gauge mirror for :meth:`Tracer.gauge` (numeric values only —
        the tracer's own dict keeps strings like ``core.variant``)."""
        if not self.enabled:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        self.gauge(
            f"repro_{sanitize_metric_name(name)}",
            f"Mirrored tracer gauge {name!r}",
        ).set(value)


def publish_gauge(tracer: Any, metrics: "MetricsRegistry",
                  name: str, value: Any, **labels: Any) -> None:
    """End-of-run gauge publication that works for any tracer/registry
    combination: an enabled tracer records (and mirrors) it; with the
    tracer off, the registry still gets the numeric value."""
    if tracer is not None and tracer.enabled:
        tracer.gauge(name, value, **labels)
    else:
        metrics.trace_gauge(name, value)


#: the shared disabled registry — default value of every ``metrics``
#: parameter, so the un-monitored path never allocates
NULL_REGISTRY = MetricsRegistry(enabled=False)

#: the process-wide default registry serving-mode components share
REGISTRY = MetricsRegistry()
