"""Ring-buffer slow-query log.

Rule-lattice workloads have heavy-tailed latencies: most statements of
a translation program are sub-millisecond while the occasional
``Q8``-style join or a dense MINE RULE run dominates a whole session.
Aggregate histograms show *that* a tail exists; this log keeps *which*
statements were in it — the last ``capacity`` executions slower than
``threshold`` seconds, oldest evicted first, thread-safe so the
monitoring server can render it mid-run.

Surfaces: the text report (:mod:`repro.report`), the ``/stats.json``
monitoring endpoint, and :meth:`SlowQueryLog.render` for terminals.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.obs import context as obs_context


@dataclass(frozen=True)
class SlowQuery:
    """One over-threshold execution."""

    name: str  # e.g. "sql.Select", "preprocessor.Q8", "minerule.run"
    seconds: float
    detail: str = ""
    #: wall-clock timestamp (``time.time``) of the recording
    at: float = 0.0
    #: correlation ids of the run/job that executed the statement
    #: (captured from the ambient trace context at record time)
    trace_id: Optional[str] = None
    job_id: Optional[str] = None
    run_id: Optional[Any] = None

    def describe(self) -> str:
        detail = f" — {self.detail}" if self.detail else ""
        return f"{self.name:<24} {self.seconds * 1000:9.2f} ms{detail}"


class SlowQueryLog:
    """Bounded log of executions slower than a threshold.

    ``threshold`` is in seconds; ``capacity`` bounds memory (a ring
    buffer: the newest entry evicts the oldest).  ``record`` returns
    whether the observation was slow enough to keep, so call sites can
    bump a counter alongside.
    """

    def __init__(
        self,
        threshold: float = 0.050,
        capacity: int = 64,
        clock: Callable[[], float] = time.time,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        #: total recorded (kept) slow executions, including evicted ones
        self.total_recorded = 0

    def record(self, name: str, seconds: float, detail: str = "") -> bool:
        """Keep the observation iff it crossed the threshold."""
        if seconds < self.threshold:
            return False
        context = obs_context.current()
        entry = SlowQuery(
            name=name,
            seconds=seconds,
            detail=" ".join(detail.split())[:200],
            at=self._clock(),
            trace_id=context.trace_id if context is not None else None,
            job_id=context.job_id if context is not None else None,
            run_id=context.run_id if context is not None else None,
        )
        with self._lock:
            self._entries.append(entry)
            self.total_recorded += 1
        return True

    def entries(self) -> List[SlowQuery]:
        """Snapshot, oldest first."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def as_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready entries for ``/stats.json``."""
        out: List[Dict[str, Any]] = []
        for entry in self.entries():
            row: Dict[str, Any] = {
                "name": entry.name,
                "ms": round(entry.seconds * 1000, 3),
                "detail": entry.detail,
                "at": entry.at,
            }
            if entry.trace_id is not None:
                row["trace_id"] = entry.trace_id
            if entry.job_id is not None:
                row["job_id"] = entry.job_id
            if entry.run_id is not None:
                row["run_id"] = entry.run_id
            out.append(row)
        return out

    def render(self, limit: int = 10) -> str:
        """Text rendering, slowest first (report embedding)."""
        entries = sorted(self.entries(), key=lambda e: -e.seconds)[:limit]
        if not entries:
            return (
                f"slow-query log: empty "
                f"(threshold {self.threshold * 1000:.1f} ms)"
            )
        lines = [
            f"slow-query log: {self.total_recorded} over "
            f"{self.threshold * 1000:.1f} ms (showing {len(entries)})"
        ]
        lines.extend(f"  {entry.describe()}" for entry in entries)
        return "\n".join(lines)
