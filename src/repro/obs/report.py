"""Consolidated end-of-run observability report.

Text rendering of everything a :class:`~repro.obs.spans.Tracer`
collected: wall time by category, the slowest spans, counters and
gauges.  The MINE RULE report (:mod:`repro.report`) embeds a compact
variant; the CLI ``.trace`` meta command prints this full one.
"""

from __future__ import annotations

from typing import List

from repro.obs.spans import Tracer


def render_obs_report(tracer: Tracer, top: int = 10) -> str:
    if not tracer.enabled:
        return "tracing disabled (run with --trace-out to record spans)"
    lines: List[str] = []
    lines.append(
        f"observability: {len(tracer.spans)} spans, "
        f"{len(tracer.instants)} events"
    )

    by_category = tracer.category_seconds()
    if by_category:
        lines.append("time by category:")
        total = sum(by_category.values())
        for category, seconds in sorted(
            by_category.items(), key=lambda kv: -kv[1]
        ):
            share = 100.0 * seconds / total if total else 0.0
            lines.append(
                f"  {category:<16} {seconds * 1000:9.2f} ms ({share:4.1f}%)"
            )

    by_cpu = tracer.category_cpu_seconds()
    if by_cpu:
        lines.append("cpu by category:")
        for category, seconds in sorted(
            by_cpu.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {category:<16} {seconds * 1000:9.2f} ms")

    peaks = [s for s in tracer.spans if s.peak_bytes]
    if peaks:
        lines.append("peak traced memory (top spans):")
        for span in sorted(peaks, key=lambda s: -s.peak_bytes)[:5]:
            lines.append(
                f"  {span.name:<28} {span.peak_bytes / 1024:9.1f} KiB"
            )

    slowest = tracer.slowest(top)
    if slowest:
        lines.append(f"slowest spans (top {len(slowest)}):")
        for span in slowest:
            lines.append(
                f"  {span.name:<28} {span.seconds * 1000:9.2f} ms"
            )

    if tracer.counters:
        lines.append("counters:")
        for counter, value in sorted(tracer.counters.items()):
            lines.append(f"  {counter}: {value:g}")
    if tracer.gauges:
        lines.append("gauges:")
        for gauge, value in sorted(tracer.gauges.items()):
            lines.append(f"  {gauge}: {value}")
    return "\n".join(lines)
