"""Chrome trace-event export.

Serialises a :class:`~repro.obs.spans.Tracer` to the JSON object format
understood by ``chrome://tracing`` / Perfetto: spans become ``"X"``
(complete) events with microsecond ``ts``/``dur`` relative to the
tracer's origin, instants become ``"i"`` events, and the final counter
values are emitted as one ``"C"`` event each at the end of the trace.

Events carry the *real* pid/tid of the code that recorded them: spans
spliced in from shard worker processes
(:meth:`~repro.obs.spans.Tracer.splice`) keep the worker's pid, so a
``workers=N`` run renders as one parent lane plus one labelled lane
per worker — the whole fan-out in a single trace.  Span args include
the correlation ids (``trace_id``/``span_id``/``parent_id``) and, when
profiling is on, per-span CPU milliseconds and peak traced bytes.

``trace_events(tracer, trace_id=...)`` restricts the export to one
run's events — the shape the run history's ``GET /runs/<id>/trace``
endpoint persists and serves.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.spans import Tracer

#: lane ids used when a span predates pid/tid stamping (spliced
#: records from old bundles, hand-built spans in tests)
_PID = 1
_TID = 1


def trace_events(
    tracer: Tracer, trace_id: Optional[str] = None
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for *tracer*.

    ``trace_id`` filters to one run's spans/instants (session-wide
    counters are omitted in that case — they aggregate across runs)."""
    origin = tracer.origin
    spans = tracer.spans
    instants = tracer.instants
    if trace_id is not None:
        spans = [s for s in spans if s.trace_id == trace_id]
        instants = [i for i in instants if i.trace_id == trace_id]
    own_pid = tracer.pid or _PID
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": own_pid,
            "args": {"name": "repro mining pipeline"},
        }
    ]
    seen_pids = {own_pid}
    last_us = 0.0
    for span in sorted(spans, key=lambda s: s.start):
        pid = span.pid or own_pid
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"repro shard worker {pid}"},
                }
            )
        ts = (span.start - origin) * 1e6
        dur = span.seconds * 1e6
        last_us = max(last_us, ts + dur)
        args = _json_safe(span.args)
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        if span.span_id is not None:
            args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.cpu is not None:
            args["cpu_ms"] = round(span.cpu * 1000, 3)
        if span.peak_bytes is not None:
            args["peak_bytes"] = span.peak_bytes
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "pid": pid,
                "tid": span.tid or _TID,
                "ts": round(ts, 3),
                "dur": round(dur, 3),
                "args": args,
            }
        )
    for instant in instants:
        ts = (instant.at - origin) * 1e6
        last_us = max(last_us, ts)
        args = _json_safe(instant.args)
        if instant.trace_id is not None:
            args["trace_id"] = instant.trace_id
        events.append(
            {
                "name": instant.name,
                "cat": instant.category or "event",
                "ph": "i",
                "s": "t",
                "pid": own_pid,
                "tid": _TID,
                "ts": round(ts, 3),
                "args": args,
            }
        )
    if trace_id is None:
        for counter, value in sorted(tracer.counters.items()):
            events.append(
                {
                    "name": counter,
                    "ph": "C",
                    "pid": own_pid,
                    "ts": round(last_us, 3),
                    "args": {"value": value},
                }
            )
    return events


def render_chrome_trace(tracer: Tracer) -> str:
    """The complete trace file as a JSON string."""
    payload = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": _json_safe(tracer.counters),
            "gauges": _json_safe(tracer.gauges),
        },
    }
    return json.dumps(payload, indent=1)


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the trace file; returns *path* for message convenience."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_chrome_trace(tracer))
    return path


def _json_safe(value: Any) -> Any:
    """Coerce span args to JSON-serialisable values (repr fallback)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)
