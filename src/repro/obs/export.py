"""Chrome trace-event export.

Serialises a :class:`~repro.obs.spans.Tracer` to the JSON object format
understood by ``chrome://tracing`` / Perfetto: spans become ``"X"``
(complete) events with microsecond ``ts``/``dur`` relative to the
tracer's origin, instants become ``"i"`` events, and the final counter
values are emitted as one ``"C"`` event each at the end of the trace.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.obs.spans import Tracer

#: single-process trace: everything runs in one interpreter
_PID = 1
_TID = 1


def trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for *tracer*."""
    origin = tracer.origin
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "args": {"name": "repro mining pipeline"},
        }
    ]
    last_us = 0.0
    for span in sorted(tracer.spans, key=lambda s: s.start):
        ts = (span.start - origin) * 1e6
        dur = span.seconds * 1e6
        last_us = max(last_us, ts + dur)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "pid": _PID,
                "tid": _TID,
                "ts": round(ts, 3),
                "dur": round(dur, 3),
                "args": _json_safe(span.args),
            }
        )
    for instant in tracer.instants:
        ts = (instant.at - origin) * 1e6
        last_us = max(last_us, ts)
        events.append(
            {
                "name": instant.name,
                "cat": instant.category or "event",
                "ph": "i",
                "s": "t",
                "pid": _PID,
                "tid": _TID,
                "ts": round(ts, 3),
                "args": _json_safe(instant.args),
            }
        )
    for counter, value in sorted(tracer.counters.items()):
        events.append(
            {
                "name": counter,
                "ph": "C",
                "pid": _PID,
                "ts": round(last_us, 3),
                "args": {"value": value},
            }
        )
    return events


def render_chrome_trace(tracer: Tracer) -> str:
    """The complete trace file as a JSON string."""
    payload = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": _json_safe(tracer.counters),
            "gauges": _json_safe(tracer.gauges),
        },
    }
    return json.dumps(payload, indent=1)


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the trace file; returns *path* for message convenience."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_chrome_trace(tracer))
    return path


def _json_safe(value: Any) -> Any:
    """Coerce span args to JSON-serialisable values (repr fallback)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)
