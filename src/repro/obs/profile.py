"""Per-span resource attribution: CPU time and peak memory.

CPU attribution uses ``time.process_time()`` — user+system CPU of the
whole process.  Within one thread the delta over a span is the CPU
that span's work consumed plus whatever other threads burned
concurrently; for the pipeline (which serializes runs under the run
lock) that is an honest per-span figure, and in shard workers (one
task at a time) it is exact.

Memory attribution uses :mod:`tracemalloc`, strictly opt-in
(``--profile-mem``) because instrumenting every allocation costs real
time.  Per-span peaks are derived without ``tracemalloc.reset_peak``
— resetting the global high-water mark inside a nested span would
corrupt the enclosing span's reading — so a span's ``peak_bytes`` is
the growth of the traced high-water mark over the span, floored at
the net allocation delta.  Coarse (an early global peak can mask a
later smaller one) but nesting-safe and monotonic.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Optional, Tuple

#: a (current, peak) tracemalloc sample, or None when not tracing
MemorySample = Optional[Tuple[int, int]]


def cpu_seconds() -> float:
    """Process CPU clock (user + system), for span deltas."""
    return time.process_time()


def memory_tracking_active() -> bool:
    return tracemalloc.is_tracing()


def start_memory_tracking() -> None:
    """Idempotently enable tracemalloc (the --profile-mem switch)."""
    if not tracemalloc.is_tracing():
        tracemalloc.start()


def stop_memory_tracking() -> None:
    if tracemalloc.is_tracing():
        tracemalloc.stop()


def memory_sample() -> MemorySample:
    """(current, peak) traced bytes, or None when tracing is off."""
    if not tracemalloc.is_tracing():
        return None
    return tracemalloc.get_traced_memory()


def peak_bytes_since(baseline: MemorySample) -> Optional[int]:
    """Peak traced bytes attributable to the work since *baseline*.

    The high-water growth over the interval when a new global peak
    occurred; otherwise the net allocation delta (floored at zero)."""
    if baseline is None or not tracemalloc.is_tracing():
        return None
    start_current, start_peak = baseline
    end_current, end_peak = tracemalloc.get_traced_memory()
    if end_peak > start_peak:
        return max(0, end_peak - start_current)
    return max(0, end_current - start_current)
