"""repro — a tightly-coupled architecture for data mining.

Reproduction of R. Meo, G. Psaila, S. Ceri, *A Tightly-Coupled
Architecture for Data Mining* (ICDE 1998): the MINE RULE operator
executed on top of a SQL server, with the relational part of the work
translated to SQL (queries Q0..Q11) and the mining part performed by a
specialized core operator.

Quickstart::

    from repro import Database, MiningSystem
    from repro.datagen import load_purchase_figure1

    system = MiningSystem()
    load_purchase_figure1(system.db)
    result = system.execute('''
        MINE RULE SimpleAssociations AS
        SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD,
               SUPPORT, CONFIDENCE
        FROM Purchase
        GROUP BY customer
        EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5
    ''')
    for rule in result.rules:
        print(rule)
"""

from repro.faults import FaultError, FaultSchedule, RetryPolicy
from repro.sqlengine import Database
from repro.system import MiningResult, MiningSystem

__version__ = "1.0.0"

__all__ = [
    "Database",
    "FaultError",
    "FaultSchedule",
    "MiningResult",
    "MiningSystem",
    "RetryPolicy",
    "__version__",
]
