"""Sharded multi-core mining: group-range partitioning + exact merge.

The paper's encoded representation — ``(Gid, Bid)`` pairs, and
``(Gid, Cid, ...)`` for the general variant — partitions cleanly by
group range, and every count the core operator needs (itemset group
counts, rule support counts, body occurrence counts) is *additive*
across gid-disjoint slices.  That is exactly the shape of the
Partition pool member (Savasere et al., VLDB 1995) lifted from one
process to many:

phase 1 (local)
    every shard mines its contiguous gid range with a proportionally
    scaled threshold ``max(1, ceil(min_count/total * shard_size))``.
    Any globally frequent itemset/rule must be locally frequent in at
    least one shard, so the union of the local result keys is a
    complete candidate superset (never a miss; possibly extra
    candidates that the recount discards).

phase 2 (recount)
    every shard counts *all* candidates exactly over its own range —
    vertical AND-and-popcount for the simple variant
    (:func:`exact_itemset_counts`), elementary-support intersection
    for the lattice variant
    (:meth:`~repro.kernel.core.general.GeneralCoreOperator.exact_counts`).

merge
    per-candidate counts sum across shards; globally frequent
    survivors go through the *same* rule construction as the serial
    path (:func:`repro.kernel.core.simple.build_rules`, or the
    general emission arithmetic replicated in
    :func:`_emit_general`), so the output rule list is bit-identical
    to ``workers=1`` — same integers, same float divisions, same
    canonical sort.

Workers are ``multiprocessing.Pool`` processes (start method
selectable: fork is cheapest, spawn is the portable/CI choice).  The
mining input travels once per pool via the worker initializer —
inherited through the fork memory image for free, pickled once per
worker under spawn — and each task payload carries only its gid span,
so per-phase serialization stays negligible next to the mining
itself.  ``in_process=True`` runs the identical phase functions
inline — used by the differential tests and as the graceful fallback
when a pool cannot be created.  Fault site ``core.shard.<i>`` is
checked in the parent before dispatching shard ``i`` (schedules are
process-local, so checks inside workers would never fire).
"""

from __future__ import annotations

import math
import time
import warnings
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro import faults
from repro.algorithms.base import (
    FrequentItemsetMiner,
    GroupMap,
    ItemsetCounts,
    item_bitmaps,
)
from repro.algorithms.bitset import (
    BitsetStats,
    SlotUniverse,
    packed_item_bitmaps,
    packed_kernels_enabled,
    validate_representation,
)
from repro.kernel.core.general import GeneralCoreOperator, RuleKey
from repro.kernel.core.inputs import GeneralInput, SimpleInput
from repro.kernel.core.rules import CONFIDENCE_EPSILON as _EPSILON
from repro.kernel.core.rules import EncodedRule
from repro.kernel.core.simple import build_rules
from repro.kernel.metrics import CoreStats
from repro.kernel.program import CoreDirectives
from repro.obs import context as obs_context
from repro.obs.context import ChildTracer
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.spans import NULL_TRACER

#: start methods accepted by :class:`ShardedMiner` (None: platform
#: default — fork on POSIX, spawn elsewhere)
START_METHODS = ("fork", "spawn", "forkserver")


def local_min_count(min_count: int, total: int, shard_size: int) -> int:
    """The scaled phase-1 threshold of a shard holding *shard_size* of
    *total* groups: the same ``ceil`` scaling as the Partition
    algorithm, guaranteeing that a globally frequent itemset is
    locally frequent in at least one shard."""
    if shard_size == 0:
        return 1
    fraction = min_count / total
    return max(1, math.ceil(fraction * shard_size - 1e-9))


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic split of a group universe into contiguous Gid
    ranges.

    ``bounds[i]`` is the inclusive ``(lo, hi)`` gid range of shard
    ``i`` (``None`` for an empty shard — more shards than groups);
    ``sizes[i]`` its group count.  Ranges follow sorted-gid order and
    sizes are balanced to within one group (the first ``total %
    shards`` shards take the extra group), so the same universe always
    yields the same plan.
    """

    shards: int
    bounds: Tuple[Optional[Tuple[int, int]], ...]
    sizes: Tuple[int, ...]

    @classmethod
    def split(cls, gids, shards: int) -> "ShardPlan":
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        ordered = sorted(gids)
        total = len(ordered)
        base, extra = divmod(total, shards)
        bounds: List[Optional[Tuple[int, int]]] = []
        sizes: List[int] = []
        start = 0
        for index in range(shards):
            size = base + (1 if index < extra else 0)
            if size == 0:
                bounds.append(None)
            else:
                bounds.append((ordered[start], ordered[start + size - 1]))
            sizes.append(size)
            start += size
        return cls(shards=shards, bounds=tuple(bounds), sizes=tuple(sizes))

    @property
    def total(self) -> int:
        return sum(self.sizes)

    def assign(self, groups: GroupMap) -> List[Dict[int, FrozenSet[int]]]:
        """Split a group map into per-shard sub-maps along the plan."""
        ordered = sorted(groups)
        out: List[Dict[int, FrozenSet[int]]] = []
        start = 0
        for size in self.sizes:
            out.append(
                {gid: groups[gid] for gid in ordered[start : start + size]}
            )
            start += size
        return out

    def shard_of(self, gid: int) -> Optional[int]:
        """The shard whose range contains *gid* (None when out of
        every range)."""
        for index, span in enumerate(self.bounds):
            if span is not None and span[0] <= gid <= span[1]:
                return index
        return None

    def describe(self) -> str:
        """One-line summary for the process trace."""
        spans = ", ".join(
            "empty" if span is None else f"{span[0]}..{span[1]} ({size})"
            for span, size in zip(self.bounds, self.sizes)
        )
        return f"{self.shards} shards: {spans}"


class ColumnarShardSource:
    """Lazy per-shard group maps over the raw ``(Gid, Bid)`` identifier
    columns of a columnar ``CodedSource`` table.

    The streaming alternative to ``ShardPlan.assign``: instead of
    materializing every shard's ``{gid: frozenset(items)}`` dict in the
    parent (dicts of frozensets pickle expensively, and under spawn the
    whole bundle travels to every worker), the bundle carries the two
    flat identifier lists straight off the columnar table's vectors
    plus the shard bounds.  Each worker builds — and memoizes — only
    the shard maps it is actually handed, in the same sorted-gid order
    as ``ShardPlan.assign``, so the mining output stays bit-identical
    to the dict path.  Indexing mimics the per-shard list the phase
    functions expect (``shards[index]``).

    The general variant keeps the sliced-input path: its per-shard
    inputs are nested cluster maps that have no flat column shape.
    """

    __slots__ = ("gids", "bids", "bounds", "_cache")

    def __init__(self, gids, bids, bounds):
        self.gids = gids
        self.bids = bids
        self.bounds = bounds
        self._cache: Dict[int, Dict[int, FrozenSet[int]]] = {}

    def __getstate__(self):
        # the memo stays process-local; only the columns travel
        return (self.gids, self.bids, self.bounds)

    def __setstate__(self, state):
        self.gids, self.bids, self.bounds = state
        self._cache = {}

    def __len__(self) -> int:
        return len(self.bounds)

    def __getitem__(self, index: int) -> Dict[int, FrozenSet[int]]:
        groups = self._cache.get(index)
        if groups is None:
            sets: Dict[int, set] = {}
            span = self.bounds[index]
            if span is not None:
                lo, hi = span
                for gid, bid in zip(self.gids, self.bids):
                    if lo <= gid <= hi:
                        sets.setdefault(gid, set()).add(bid)
            groups = {gid: frozenset(sets[gid]) for gid in sorted(sets)}
            self._cache[index] = groups
        return groups


def exact_itemset_counts(
    groups: GroupMap,
    candidates: List[Tuple[int, ...]],
    representation: str,
) -> List[int]:
    """Exact group counts of every candidate itemset over *groups*,
    aligned with *candidates* (sorted item tuples).

    The shard-local recount kernel of the simple variant: vertical
    AND-and-popcount on the bitmap layouts, a horizontal subset scan
    on ``"set"``.  No threshold is applied — merging partial counts
    across shards needs the zeros too.
    """
    if not groups:
        return [0] * len(candidates)
    if representation == "set":
        sets = [frozenset(candidate) for candidate in candidates]
        counts = [0] * len(candidates)
        for items in groups.values():
            for index, candidate in enumerate(sets):
                if candidate <= items:
                    counts[index] += 1
        return counts
    universe = SlotUniverse(groups)
    if representation == "packed" and packed_kernels_enabled(len(universe)):
        item_maps = packed_item_bitmaps(groups.items(), universe)
    else:
        item_maps = item_bitmaps(groups.items(), universe)
    counts = []
    for candidate in candidates:
        mask = None
        missing = False
        for item in candidate:
            bitmap = item_maps.get(item)
            if bitmap is None:
                missing = True
                break
            mask = bitmap if mask is None else mask & bitmap
            if not mask:
                break
        counts.append(0 if missing or mask is None else mask.bit_count())
    return counts


def slice_general_input(
    data: GeneralInput, lo: int, hi: int, min_count: int
) -> GeneralInput:
    """The gid-range restriction of a general-core input: same flags,
    per-shard threshold, and only the groups with ``lo <= gid <= hi``."""
    body_items = {
        gid: clusters
        for gid, clusters in data.body_items.items()
        if lo <= gid <= hi
    }
    head_items = {
        gid: clusters
        for gid, clusters in data.head_items.items()
        if lo <= gid <= hi
    }
    cluster_pairs = None
    if data.cluster_pairs is not None:
        cluster_pairs = {
            gid: pairs
            for gid, pairs in data.cluster_pairs.items()
            if lo <= gid <= hi
        }
    elementary = None
    if data.elementary is not None:
        elementary = [row for row in data.elementary if lo <= row[0] <= hi]
    return GeneralInput(
        totg=data.totg,
        min_count=min_count,
        same_schema=data.same_schema,
        clustered=data.clustered,
        body_items=body_items,
        head_items=head_items,
        cluster_pairs=cluster_pairs,
        elementary=elementary,
    )


def _lattice_representation(representation: str) -> str:
    """The lattice operator's triple-set layout for an executor-level
    representation: ``"packed"`` maps to the big-int ``"bitset"``
    layout — the guard-bit distinct-group trick needs big-int
    borrow-propagating subtraction, which the word kernels do not
    implement (shard-local triple universes are small, so nothing is
    lost)."""
    return "bitset" if representation == "packed" else representation


#: user-facing message when an *explicitly requested* packed layout is
#: remapped for the lattice core (tests pin this text)
PACKED_LATTICE_REMAP_MESSAGE = (
    'representation="packed" is not supported by the lattice (general) '
    "core: the guard-bit distinct-group trick needs big-int borrow "
    'subtraction; proceeding with representation="bitset"'
)

_packed_remap_warned = False


def _warn_packed_lattice_remap(tracer) -> None:
    """Surface an explicit packed->bitset lattice remap: a tracer
    instant every time, a ``RuntimeWarning`` once per process (the
    remap is per-run but nagging on every statement helps nobody)."""
    global _packed_remap_warned
    if tracer is not None and tracer.enabled:
        tracer.instant(
            "core.representation_remap",
            category="core",
            requested="packed",
            effective="bitset",
        )
    if not _packed_remap_warned:
        warnings.warn(
            PACKED_LATTICE_REMAP_MESSAGE, RuntimeWarning, stacklevel=3
        )
        _packed_remap_warned = True


def reset_packed_remap_warning() -> None:
    """Re-arm the one-time remap warning (test isolation helper)."""
    global _packed_remap_warned
    _packed_remap_warned = False


# ---------------------------------------------------------------------------
# phase functions (module level: picklable under every start method)
# ---------------------------------------------------------------------------

#: the per-pool input bundle, installed by :func:`_set_worker_bundle`.
#: Shipping the (large) mining input once per pool — through the fork
#: memory image for free, or one initializer pickle per worker under
#: spawn — instead of once per shard per phase keeps the task payloads
#: down to ``(index, ...)`` tuples; on a saturated machine the
#: per-task serialization would otherwise rival the mining itself.
#: The bundle holds the input *pre-sliced* per shard, so a forked
#: worker only ever touches (and therefore copy-on-writes) its own
#: shard's objects, not the whole group universe.
_WORKER_BUNDLE = None

#: trace id of the run that owns this pool (None: tracing off).  Set
#: by the initializer alongside the bundle; phase functions record
#: their spans into a per-task :class:`ChildTracer` and ship the
#: events back with the shard result for the parent to splice.
_WORKER_TRACE: Optional[str] = None


def _set_worker_bundle(bundle, trace: Optional[str] = None) -> None:
    """Pool initializer: install the shared input bundle and the
    owning run's trace id.  Also called directly (same process) by the
    inline executor paths."""
    global _WORKER_BUNDLE, _WORKER_TRACE
    _WORKER_BUNDLE = bundle
    _WORKER_TRACE = trace


def _child_tracer() -> Optional[ChildTracer]:
    """A per-task child tracer when the owning run is traced."""
    if _WORKER_TRACE is None:
        return None
    return ChildTracer(trace_id=_WORKER_TRACE or None)


def _shard_span(tracer: Optional[ChildTracer], phase: str, index: int):
    if tracer is None:
        return nullcontext()
    return tracer.span(
        f"core.shard.{index}.{phase}",
        category="core.shard",
        phase=phase,
        shard=index,
    )


def _child_events(tracer: Optional[ChildTracer]):
    return tracer.export() if tracer is not None else None


def _mine_simple_shard(payload):
    """Phase 1 (simple): locally frequent itemset keys of one shard."""
    index, local_min = payload
    started = time.perf_counter()
    tracer = _child_tracer()
    _, shards, algorithm = _WORKER_BUNDLE
    keys: List[Tuple[int, ...]] = []
    stats = BitsetStats()
    with _shard_span(tracer, "local", index):
        groups = shards[index]
        if groups:
            counts = algorithm.mine(groups, local_min)
            keys = sorted(tuple(sorted(itemset)) for itemset in counts)
            shard_stats = getattr(algorithm, "stats", None)
            if shard_stats is not None:
                stats.merge(shard_stats)
    return (
        index, keys, stats,
        time.perf_counter() - started, _child_events(tracer),
    )


def _count_simple_shard(payload):
    """Phase 2 (simple): exact candidate counts of one shard."""
    index, candidates, representation = payload
    started = time.perf_counter()
    tracer = _child_tracer()
    _, shards, _ = _WORKER_BUNDLE
    with _shard_span(tracer, "recount", index):
        counts = exact_itemset_counts(
            shards[index], candidates, representation
        )
    return (
        index, counts, None,
        time.perf_counter() - started, _child_events(tracer),
    )


def _mine_general_shard(payload):
    """Phase 1 (general): locally frequent lattice keys of one shard."""
    index, local_min = payload
    started = time.perf_counter()
    tracer = _child_tracer()
    _, shards, directives, representation = _WORKER_BUNDLE
    with _shard_span(tracer, "local", index):
        operator = GeneralCoreOperator(
            representation=_lattice_representation(representation)
        )
        lattice = operator.mine_lattice(
            shards[index], directives, min_count=local_min
        )
        operator.finalize_stats()
        keys = sorted(
            key for rule_set in lattice.values() for key in rule_set
        )
    extras = (
        dict(operator.lattice_sizes),
        operator.join_pairs_examined,
        operator.bitmap_stats,
    )
    return (
        index, keys, extras,
        time.perf_counter() - started, _child_events(tracer),
    )


def _count_general_shard(payload):
    """Phase 2 (general): exact support/body counts of one shard."""
    index, candidates, bodies = payload
    started = time.perf_counter()
    tracer = _child_tracer()
    _, shards, _, representation = _WORKER_BUNDLE
    with _shard_span(tracer, "recount", index):
        operator = GeneralCoreOperator(
            representation=_lattice_representation(representation)
        )
        supports, body_counts = operator.exact_counts(
            shards[index], candidates, bodies
        )
    return (
        index,
        (supports, body_counts),
        operator.bitmap_stats,
        time.perf_counter() - started,
        _child_events(tracer),
    )


def _emit_general(
    candidates: List[RuleKey],
    support_counts: List[int],
    body_counts: Dict[Tuple[int, ...], int],
    data: GeneralInput,
    directives: CoreDirectives,
) -> List[EncodedRule]:
    """The general variant's emission over merged exact counts — the
    same cardinality/confidence arithmetic and canonical sort as
    ``GeneralCoreOperator._emit``, fed by integers instead of support
    sets, so the float ratios come out bit-identical."""
    body_min, body_max = directives.body_card
    head_min, head_max = directives.head_card
    min_confidence = directives.min_confidence
    min_count = data.min_count

    rules: List[EncodedRule] = []
    for (body, head), support_count in zip(candidates, support_counts):
        if support_count < min_count:
            continue
        m, n = len(body), len(head)
        if m < body_min or (body_max is not None and m > body_max):
            continue
        if n < head_min or (head_max is not None and n > head_max):
            continue
        body_count = body_counts[body]
        confidence = support_count / body_count if body_count else 0.0
        if confidence + _EPSILON < min_confidence:
            continue
        rules.append(
            EncodedRule(
                body=frozenset(body),
                head=frozenset(head),
                support_count=support_count,
                body_count=body_count,
                support=support_count / data.totg if data.totg else 0.0,
                confidence=confidence,
            )
        )
    rules.sort(key=EncodedRule.key)
    return rules


# ---------------------------------------------------------------------------


class ShardedMiner:
    """The sharded executor: plan, fan out, recount, merge.

    ``workers`` bounds the process pool; ``shards`` (default:
    ``workers``) the number of gid ranges — more shards than workers
    simply queue.  ``start_method`` picks the multiprocessing start
    method (None: platform default).  ``in_process=True`` executes the
    identical phase functions inline, which is also the automatic
    fallback when the pool cannot be created (the results do not
    depend on where the phases run).
    """

    def __init__(
        self,
        workers: int = 2,
        shards: Optional[int] = None,
        start_method: Optional[str] = None,
        in_process: bool = False,
        tracer=None,
        metrics=None,
        explicit_representation: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        if start_method is not None and start_method not in START_METHODS:
            raise ValueError(
                f"unknown start method {start_method!r}; "
                f"choose from {START_METHODS}"
            )
        self.workers = workers
        self.shards = shards if shards is not None else workers
        self.start_method = start_method
        self.in_process = in_process
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: True when the representation came from the user (an explicit
        #: choice that gets a warning if the lattice remaps it) rather
        #: than the executor's own packed auto-upgrade
        self.explicit_representation = explicit_representation
        #: (phase, shard) -> wall seconds of the last run
        self.shard_seconds: Dict[Tuple[str, int], float] = {}
        #: set when a pool could not be created and phases ran inline
        self.degraded: Optional[str] = None

    # -- the two public entry points -----------------------------------

    def mine_simple(
        self,
        data: SimpleInput,
        directives: CoreDirectives,
        algorithm: FrequentItemsetMiner,
        columns: Optional[Tuple[List[int], List[int]]] = None,
    ) -> Tuple[List[EncodedRule], CoreStats]:
        """Sharded counterpart of ``SimpleCoreOperator.run`` —
        bit-identical rules, counts merged from per-shard passes.

        *columns* streams the shard inputs: the raw ``(Gid, Bid)``
        identifier lists of a columnar ``CodedSource``
        (:meth:`~repro.kernel.core.inputs.CoreInputLoader.load_simple_columns`)
        ride the bundle as a :class:`ColumnarShardSource` and each
        worker builds only its own shard's group map; ``data.groups``
        is then never consulted."""
        representation = validate_representation(
            getattr(algorithm, "representation", "bitset")
        )
        self.shard_seconds = {}
        if columns is not None:
            gid_col, bid_col = columns
            plan = ShardPlan.split(set(gid_col), self.shards)
            total = plan.total
        else:
            groups = data.groups
            plan = ShardPlan.split(groups, self.shards)
            total = len(groups)

        stats = BitsetStats()
        counts: ItemsetCounts = {}
        if total:
            if columns is not None:
                shard_maps = ColumnarShardSource(
                    gid_col, bid_col, plan.bounds
                )
            else:
                shard_maps = plan.assign(groups)
            bundle = ("simple", shard_maps, algorithm)
            local_payloads = [
                (index, local_min_count(data.min_count, total, size))
                for index, size in enumerate(plan.sizes)
            ]
            with self._executor(len(local_payloads), bundle) as run_phase:
                local = self._run_phase(
                    "local", run_phase, _mine_simple_shard, local_payloads
                )
                candidates = sorted(
                    {key for _, keys, _, _, _ in local for key in keys}
                )
                for _, _, shard_stats, _, _ in local:
                    stats.merge(shard_stats)

                count_payloads = [
                    (index, candidates, representation)
                    for index in range(plan.shards)
                ]
                recount = self._run_phase(
                    "recount", run_phase, _count_simple_shard, count_payloads
                )
            merged = [0] * len(candidates)
            for _, shard_counts, _, _, _ in recount:
                for index, value in enumerate(shard_counts):
                    merged[index] += value
            counts = {
                frozenset(candidate): count
                for candidate, count in zip(candidates, merged)
                if count >= data.min_count
            }

        rules = build_rules(counts, data.totg, directives)
        core_stats = CoreStats(
            variant="simple",
            representation=representation,
            algorithm=algorithm.name,
            universe_sizes=dict(stats.universe_sizes),
            popcount_calls=stats.popcount_calls,
            intersections=stats.intersections,
            passes=stats.passes,
            candidates_generated=stats.candidates,
            bitset_density=stats.density(),
            shards=plan.shards,
            workers=self.workers,
        )
        return rules, core_stats

    def mine_general(
        self,
        data: GeneralInput,
        directives: CoreDirectives,
        representation: str = "bitset",
    ) -> Tuple[List[EncodedRule], CoreStats]:
        """Sharded counterpart of ``GeneralCoreOperator.run``."""
        representation = validate_representation(representation)
        if representation == "packed" and self.explicit_representation:
            _warn_packed_lattice_remap(self.tracer)
        self.shard_seconds = {}
        gids = set(data.body_items) | set(data.head_items)
        if data.cluster_pairs is not None:
            gids |= set(data.cluster_pairs)
        if data.elementary is not None:
            gids |= {row[0] for row in data.elementary}
        plan = ShardPlan.split(gids, self.shards)
        total = len(gids)

        stats = BitsetStats()
        lattice_sizes: Dict[Tuple[int, int], int] = {}
        join_pairs = 0
        candidates: List[RuleKey] = []
        support_totals: List[int] = []
        body_totals: Dict[Tuple[int, ...], int] = {}
        if total:
            shard_inputs = [
                slice_general_input(
                    data,
                    span[0],
                    span[1],
                    local_min_count(data.min_count, total, size),
                )
                if span is not None
                else slice_general_input(data, 0, -1, 1)
                for span, size in zip(plan.bounds, plan.sizes)
            ]
            bundle = ("general", shard_inputs, directives, representation)
            local_payloads = [
                (index, shard.min_count)
                for index, shard in enumerate(shard_inputs)
            ]
            with self._executor(len(local_payloads), bundle) as run_phase:
                local = self._run_phase(
                    "local", run_phase, _mine_general_shard, local_payloads
                )
                candidates = sorted(
                    {key for _, keys, _, _, _ in local for key in keys}
                )
                for _, _, extras, _, _ in local:
                    sizes, pairs, shard_stats = extras
                    for key, value in sizes.items():
                        lattice_sizes[key] = lattice_sizes.get(key, 0) + value
                    join_pairs += pairs
                    stats.merge(shard_stats)

                bodies = sorted({body for body, _ in candidates})
                count_payloads = [
                    (index, candidates, bodies)
                    for index in range(plan.shards)
                ]
                recount = self._run_phase(
                    "recount", run_phase, _count_general_shard, count_payloads
                )
            support_totals = [0] * len(candidates)
            body_totals = {body: 0 for body in bodies}
            for _, (supports, body_counts), shard_stats, _, _ in recount:
                for index, value in enumerate(supports):
                    support_totals[index] += value
                for body, value in zip(bodies, body_counts):
                    body_totals[body] += value
                stats.merge(shard_stats)

        rules = _emit_general(
            candidates, support_totals, body_totals, data, directives
        )
        core_stats = CoreStats(
            variant="general",
            representation=_lattice_representation(representation),
            lattice_sizes=lattice_sizes,
            join_pairs_examined=join_pairs,
            universe_sizes=dict(stats.universe_sizes),
            popcount_calls=stats.popcount_calls,
            intersections=stats.intersections,
            passes=stats.passes or len(lattice_sizes),
            candidates_generated=stats.candidates,
            bitset_density=stats.density(),
            shards=plan.shards,
            workers=self.workers,
        )
        return rules, core_stats

    # -- execution machinery -------------------------------------------

    @contextmanager
    def _executor(self, tasks: int, bundle):
        """Yield a ``map(fn, payloads) -> results`` callable: a process
        pool shared by both phases, or inline execution (requested via
        ``in_process``, a single worker, or pool-creation failure).

        *bundle* is the shared mining input, installed into every
        worker by the pool initializer (inherited through fork, one
        pickle per worker under spawn) — task payloads then carry only
        gid spans, never the data.  The owning run's trace id rides
        along so workers record spans the parent can splice."""
        trace: Optional[str] = None
        if self.tracer.enabled:
            ctx = obs_context.current()
            trace = ctx.trace_id if ctx is not None else ""
        if self.in_process or self.workers == 1 or tasks <= 1:
            _set_worker_bundle(bundle, trace)
            yield _inline_map
            return
        import multiprocessing

        try:
            context = multiprocessing.get_context(self.start_method)
            pool = context.Pool(
                processes=min(self.workers, tasks),
                initializer=_set_worker_bundle,
                initargs=(bundle, trace),
            )
        except (ImportError, OSError, ValueError) as exc:
            self.degraded = (
                f"worker pool unavailable ({exc}); shards ran in-process"
            )
            _set_worker_bundle(bundle, trace)
            yield _inline_map
            return
        try:
            with pool:
                yield pool.map
        finally:
            pool.join()

    def _run_phase(self, phase: str, run_phase, fn, payloads):
        """Fault-check, dispatch and observe one phase.  Results come
        back ordered by shard index (``pool.map`` preserves order).
        Child-process span bundles returned with the results are
        spliced under the phase span — one trace shows the fan-out."""
        for payload in payloads:
            faults.check(f"core.shard.{payload[0]}")
        with self.tracer.span(
            f"core.shards.{phase}",
            category="core",
            shards=len(payloads),
            workers=self.workers,
        ) as phase_span:
            results = run_phase(fn, payloads)
        shard_histogram = None
        if self.metrics.enabled:
            shard_histogram = self.metrics.histogram(
                "repro_shard_seconds",
                "Wall seconds per mining shard (both phases)",
                ("shard",),
            )
        for index, _, _, seconds, child in results:
            self.shard_seconds[(phase, index)] = seconds
            if shard_histogram is not None:
                shard_histogram.observe(seconds, shard=str(index))
            if self.tracer.enabled:
                self.tracer.instant(
                    "core.shard",
                    category="core",
                    phase=phase,
                    shard=index,
                    seconds=round(seconds, 6),
                )
                self.tracer.splice(child, parent=phase_span)
        return results


def _inline_map(fn, payloads):
    return [fn(payload) for payload in payloads]
