"""Simple core processing (Section 4.3.1).

"The simple core processing algorithm is one of the traditional data
mining algorithms [...]  Then, rules are built from large itemsets by
extracting subsets of items: indicating with L a large itemset and with
H < L a subset, we form the rule (L - H) => H when it has suitable
confidence."

The large-itemset phase is delegated to any algorithm of the pool
(:mod:`repro.algorithms`); the rule-construction phase below is common
to all of them, which is precisely the algorithm-interoperability
borderline the paper draws.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional

from repro import faults
from repro.algorithms.base import FrequentItemsetMiner
from repro.kernel.core.inputs import SimpleInput
from repro.kernel.core.rules import CONFIDENCE_EPSILON as _EPSILON
from repro.kernel.core.rules import EncodedRule
from repro.kernel.program import CoreDirectives


def build_rules(
    counts: Dict[FrozenSet[int], int],
    totg: int,
    directives: CoreDirectives,
) -> List[EncodedRule]:
    """(L - H) => H extraction over exact itemset *counts*, sorted by
    the canonical (body, head) key.

    Shared by the serial :class:`SimpleCoreOperator` and the sharded
    executor's merge stage (:mod:`repro.parallel`): both feed it the
    same subset-closed count table, so the emitted rule lists are bit
    identical regardless of how the counts were obtained.
    """
    body_min, body_max = directives.body_card
    head_min, head_max = directives.head_card
    min_confidence = directives.min_confidence

    rules: List[EncodedRule] = []
    for itemset, itemset_count in counts.items():
        size = len(itemset)
        if size < body_min + head_min:
            continue
        largest_head = size - body_min
        if head_max is not None:
            largest_head = min(largest_head, head_max)
        ordered = sorted(itemset)
        for head_size in range(head_min, largest_head + 1):
            body_size = size - head_size
            if body_max is not None and body_size > body_max:
                continue
            for head in itertools.combinations(ordered, head_size):
                body = itemset - frozenset(head)
                body_count = counts[body]
                confidence = itemset_count / body_count
                if confidence + _EPSILON < min_confidence:
                    continue
                rules.append(
                    EncodedRule(
                        body=body,
                        head=frozenset(head),
                        support_count=itemset_count,
                        body_count=body_count,
                        support=itemset_count / totg if totg else 0.0,
                        confidence=confidence,
                    )
                )
    rules.sort(key=EncodedRule.key)
    return rules


class SimpleCoreOperator:
    """Large itemsets via the pool, then (L - H) => H rule extraction."""

    def __init__(self, algorithm: FrequentItemsetMiner):
        self.algorithm = algorithm

    def run(
        self, data: SimpleInput, directives: CoreDirectives
    ) -> List[EncodedRule]:
        """Mine rules from encoded groups.

        The returned list is sorted by (body, head) identifiers so that
        downstream output tables are deterministic.
        """
        faults.check("core.simple")
        counts = self.algorithm.mine(data.groups, data.min_count)
        return build_rules(counts, data.totg, directives)
