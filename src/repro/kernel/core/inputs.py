"""Loading the encoded tables into the core operator's structures.

The core operator "works on the Encoded Tables, prepared by the
preprocessor" (Section 3).  This module is the read side of that
interface: it pulls ``CodedSource``, ``ClusterCouples`` and
``InputRules`` out of the database and shapes them for the two mining
variants.  No source attribute ever crosses this boundary — only
group, cluster and item identifiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.kernel.program import CoreDirectives
from repro.sqlengine.engine import Database

#: the pseudo cluster id used when no CLUSTER BY is present: the whole
#: group acts as the single body and head cluster.
WHOLE_GROUP_CLUSTER = 0


@dataclass
class SimpleInput:
    """Input of the simple core variant: groups of encoded items."""

    totg: int
    min_count: int
    groups: Dict[int, FrozenSet[int]]


@dataclass
class GeneralInput:
    """Input of the general core variant.

    ``body_items`` / ``head_items`` map group id -> cluster id -> item
    ids occurring there (from ``CodedSource``); ``cluster_pairs`` is
    the decoded ``ClusterCouples`` table (None when every pair is
    valid); ``elementary`` carries the SQL-precomputed elementary rules
    of ``InputRules`` (None when the mining condition is absent and the
    core derives them itself, Section 4.3.2)."""

    totg: int
    min_count: int
    same_schema: bool
    clustered: bool
    body_items: Dict[int, Dict[int, Set[int]]]
    head_items: Dict[int, Dict[int, Set[int]]]
    cluster_pairs: Optional[Dict[int, Set[Tuple[int, int]]]]
    elementary: Optional[List[Tuple[int, int, int, int, int]]]

    def group_cluster_pairs(self, gid: int) -> List[Tuple[int, int]]:
        """Valid (body cluster, head cluster) pairs of one group."""
        if self.cluster_pairs is not None:
            return sorted(self.cluster_pairs.get(gid, ()))
        body_clusters = self.body_items.get(gid, {})
        head_clusters = self.head_items.get(gid, {})
        return [
            (bc, hc)
            for bc in sorted(body_clusters)
            for hc in sorted(head_clusters)
        ]


class CoreInputLoader:
    """Reads encoded tables according to the translator directives."""

    def __init__(self, database: Database, directives: CoreDirectives):
        self._db = database
        self._directives = directives

    # ------------------------------------------------------------------

    def thresholds(self) -> Tuple[int, int]:
        """(totg, min group count) as prepared by the preprocessor."""
        totg = int(self._db.variables["totg"])
        min_count = int(self._db.variables["mingroups"])
        return totg, min_count

    def load_simple(self) -> SimpleInput:
        totg, min_count = self.thresholds()
        groups: Dict[int, Set[int]] = {}
        for gid, bid in self._db.query(
            f"SELECT Gid, Bid FROM {self._directives.coded_source}"
        ):
            groups.setdefault(gid, set()).add(bid)
        return SimpleInput(
            totg=totg,
            min_count=min_count,
            groups={gid: frozenset(items) for gid, items in groups.items()},
        )

    def load_simple_columns(
        self,
    ) -> Optional[Tuple[SimpleInput, Tuple[List[int], List[int]]]]:
        """The raw ``(Gid, Bid)`` identifier columns of a *columnar*
        ``CodedSource`` — the streaming shard-input path of the sharded
        executor: no group dict is materialized in the parent, the
        columns ride the worker bundle and each worker builds only its
        own shard's map (:class:`repro.parallel.ColumnarShardSource`).
        Returns None when the coded source is not a columnar base
        table; the caller falls back to :meth:`load_simple`.  The
        returned :class:`SimpleInput` carries the thresholds with an
        empty ``groups`` dict — the columns replace it.
        """
        name = self._directives.coded_source
        catalog = self._db.catalog
        if not catalog.has_table(name):
            return None
        table = catalog.get_table(name)
        if getattr(table, "storage", "row") != "columnar":
            return None
        lists = table.column_lists()
        gid_col = lists[table.column_index("Gid")]
        bid_col = lists[table.column_index("Bid")]
        totg, min_count = self.thresholds()
        data = SimpleInput(totg=totg, min_count=min_count, groups={})
        return data, (gid_col, bid_col)

    def load_general(self) -> GeneralInput:
        directives = self._directives
        totg, min_count = self.thresholds()

        clustered = directives.clustered
        has_hid = not directives.same_schema

        columns = ["Gid"]
        if clustered:
            columns.append("Cid")
        columns.append("Bid")
        if has_hid:
            columns.append("Hid")
        rows = self._db.query(
            f"SELECT {', '.join(columns)} FROM {directives.coded_source}"
        )

        # One tuple-unpacking loop per statement shape: the row layout
        # is fixed by the SELECT above, so per-row list copies and
        # pops only re-discover what the directives already say.
        body_items: Dict[int, Dict[int, Set[int]]] = {}
        head_items: Dict[int, Dict[int, Set[int]]] = {}
        if clustered and has_hid:
            for gid, cid, bid, hid in rows:
                if bid is not None:
                    body_items.setdefault(gid, {}).setdefault(
                        cid, set()
                    ).add(bid)
                if hid is not None:
                    head_items.setdefault(gid, {}).setdefault(
                        cid, set()
                    ).add(hid)
        elif clustered:
            for gid, cid, bid in rows:
                if bid is not None:
                    body_items.setdefault(gid, {}).setdefault(
                        cid, set()
                    ).add(bid)
                    head_items.setdefault(gid, {}).setdefault(
                        cid, set()
                    ).add(bid)
        elif has_hid:
            for gid, bid, hid in rows:
                if bid is not None:
                    body_items.setdefault(gid, {}).setdefault(
                        WHOLE_GROUP_CLUSTER, set()
                    ).add(bid)
                if hid is not None:
                    head_items.setdefault(gid, {}).setdefault(
                        WHOLE_GROUP_CLUSTER, set()
                    ).add(hid)
        else:
            for gid, bid in rows:
                if bid is not None:
                    body_items.setdefault(gid, {}).setdefault(
                        WHOLE_GROUP_CLUSTER, set()
                    ).add(bid)
                    head_items.setdefault(gid, {}).setdefault(
                        WHOLE_GROUP_CLUSTER, set()
                    ).add(bid)

        cluster_pairs: Optional[Dict[int, Set[Tuple[int, int]]]] = None
        if directives.cluster_couples is not None:
            cluster_pairs = {}
            for gid, bcid, hcid in self._db.query(
                f"SELECT Gid, BCid, HCid FROM {directives.cluster_couples}"
            ):
                cluster_pairs.setdefault(gid, set()).add((bcid, hcid))

        elementary: Optional[List[Tuple[int, int, int, int, int]]] = None
        if directives.input_rules is not None:
            elementary = []
            if clustered:
                for gid, bcid, hcid, bid, hid in self._db.query(
                    f"SELECT Gid, BCid, HCid, Bid, Hid "
                    f"FROM {directives.input_rules}"
                ):
                    elementary.append((gid, bcid, hcid, bid, hid))
            else:
                for gid, bid, hid in self._db.query(
                    f"SELECT Gid, Bid, Hid FROM {directives.input_rules}"
                ):
                    elementary.append(
                        (gid, WHOLE_GROUP_CLUSTER, WHOLE_GROUP_CLUSTER, bid, hid)
                    )

        return GeneralInput(
            totg=totg,
            min_count=min_count,
            same_schema=directives.same_schema,
            clustered=clustered,
            body_items=body_items,
            head_items=head_items,
            cluster_pairs=cluster_pairs,
            elementary=elementary,
        )


def min_group_count(min_support: float, totg: int) -> int:
    """The smallest group count whose support ratio reaches
    *min_support* (at least 1): ``ceil(min_support * totg)`` with a
    guard against float fuzz."""
    return max(1, math.ceil(min_support * totg - 1e-9))
