"""Encoded rules: the core operator's output format.

"Conceptually, the core operator produces rules as associations
between two itemsets [...] where each itemset is a set of item
identifiers" (Section 4.4).  The identifiers refer to the ``Bset`` /
``Hset`` encodings; decoding is the postprocessor's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

#: tolerance for comparisons between float confidence/support ratios —
#: shared by every core-operator variant and the metrics module so the
#: threshold semantics cannot drift between implementations
CONFIDENCE_EPSILON = 1e-12


@dataclass(frozen=True)
class EncodedRule:
    """One mined rule over encoded item identifiers."""

    body: FrozenSet[int]
    head: FrozenSet[int]
    #: groups supporting the rule
    support_count: int
    #: groups containing the body (confidence denominator)
    body_count: int
    #: support_count / total number of groups
    support: float
    #: support_count / body_count
    confidence: float

    def key(self):
        """Canonical identity used for deduplication and comparisons."""
        return (tuple(sorted(self.body)), tuple(sorted(self.head)))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = "{" + ",".join(map(str, sorted(self.body))) + "}"
        head = "{" + ",".join(map(str, sorted(self.head))) + "}"
        return (
            f"{body} => {head} "
            f"(s={self.support:.4f}, c={self.confidence:.4f})"
        )
