"""General core processing (Section 4.3.2): the m x n rule lattice.

"With general association rules, the core operator starts from the
initial set of large elementary rules, and proceeds discovering rules
with bodies and heads of arbitrary cardinality [...]  given the set of
rules m x n [...] the algorithm computes the set of rules (m+1) x n and
the set of rules m x (n+1), from which rules with insufficient support
are pruned.  [...]  The efficiency of the algorithm is maximized if, at
each step, we start from the set with lower cardinality."

Key data structure: every rule carries the set of ``(group, body
cluster, head cluster)`` triples supporting it.  Extending a rule
intersects the parents' triple sets, which is *exact*:
``(B1 u B2) x H`` is contained in a cluster pair iff both ``B1 x H``
and ``B2 x H`` are.  This is the lattice counterpart of the group-id
lists of Section 4.3.1.

Two physical layouts of the triple sets are available behind the same
semantics (``representation=``):

* ``"bitset"`` (default) — triples are densely re-indexed into
  contiguous bit slots, grouped per gid with a guard bit per group
  (:class:`repro.algorithms.bitset.GroupedUniverse`); a rule's support
  set is one big int, the join intersection is ``&``, and counting the
  *distinct groups* of a rule is mask-and-popcount over the universe's
  precomputed group anchors.  The body-count index packs ``(gid, body
  cluster)`` occurrences the same way.
* ``"set"`` — the original ``set``-of-tuples layout, kept selectable
  for differential testing and the ablation bench.

Both produce bit-identical rule lists; only the join/count machinery
differs.

Elementary rules come either from the ``InputRules`` table (when the
mining condition was evaluated in SQL by queries Q8-Q10) or are derived
here from ``CodedSource`` + ``ClusterCouples``: "the core operator
itself performs the precomputation of elementary rules, which
conceptually requires the building of the cartesian product of the
source tuples belonging to the same group [...]  The cartesian product
is not materialized" — we enumerate it lazily per cluster pair.

Confidence uses body occurrences from ``CodedSource`` only ("all body
clusters are used for computing confidence", Section 2): a group counts
for the body B iff B is contained in a single body cluster, regardless
of whether that cluster pairs with any head cluster.  This reproduces
Figure 2b exactly (confidence 0.5 for {jackets} => {col_shirts}).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple, Union

from repro import faults
from repro.algorithms.bitset import (
    BitsetStats,
    GroupedUniverse,
    validate_representation,
)
from repro.kernel.core.inputs import GeneralInput
from repro.kernel.core.rules import CONFIDENCE_EPSILON as _EPSILON
from repro.kernel.core.rules import EncodedRule
from repro.kernel.program import CoreDirectives

#: a rule key: (sorted body ids, sorted head ids)
RuleKey = Tuple[Tuple[int, ...], Tuple[int, ...]]
#: a supporting occurrence: (group id, body cluster id, head cluster id)
Triple = Tuple[int, int, int]
#: a rule's support: a set of triples, or a bitmap over triple slots —
#: both intersect with ``&``
Support = Union[Set[Triple], int]
RuleSet = Dict[RuleKey, Support]


#: how _compute_set picks the parent when both exist (the "smaller"
#: strategy is the paper's heuristic; the others exist for the
#: ablation bench SYN-6)
PARENT_STRATEGIES = ("smaller", "body", "head")


class GeneralCoreOperator:
    """Lattice mining over elementary rules.

    ``parent_strategy`` selects which parent set generates a lattice
    set reachable from two parents: ``"smaller"`` follows the paper
    ("start from the set with lower cardinality"), ``"body"``/"head"``
    always prefer the body/head parent — all three are correct, the
    heuristic only affects the join work.

    ``representation`` selects the physical triple-set layout (see the
    module docstring); the mined rules are identical either way.
    """

    def __init__(
        self,
        parent_strategy: str = "smaller",
        representation: str = "bitset",
    ) -> None:
        if parent_strategy not in PARENT_STRATEGIES:
            raise ValueError(
                f"unknown parent strategy {parent_strategy!r}; "
                f"choose from {PARENT_STRATEGIES}"
            )
        self.parent_strategy = parent_strategy
        self.representation = validate_representation(representation)
        #: observability: number of rules per lattice set, keyed (m, n)
        self.lattice_sizes: Dict[Tuple[int, int], int] = {}
        #: observability: join-candidate pairs examined during expansion
        self.join_pairs_examined = 0
        #: observability: bitmap counters of the last run (bitset mode)
        self.bitmap_stats = BitsetStats()
        #: bitset mode: triple-slot universe of the current run
        self._triples: Optional[GroupedUniverse] = None
        #: bitset mode: (gid, body cluster) universe for body counts
        self._body_pairs: Optional[GroupedUniverse] = None

    def run(
        self, data: GeneralInput, directives: CoreDirectives
    ) -> List[EncodedRule]:
        lattice = self.mine_lattice(data, directives)
        rules = self._emit(lattice, data, directives)
        self.finalize_stats()
        return rules

    def mine_lattice(
        self,
        data: GeneralInput,
        directives: CoreDirectives,
        min_count: Optional[int] = None,
    ) -> Dict[Tuple[int, int], RuleSet]:
        """Compute the full rule lattice, pruned at ``min_count``
        (default: the input's own threshold).

        The explicit ``min_count`` override is what the sharded
        executor (:mod:`repro.parallel`) uses for phase-1 local mining
        with a proportionally scaled threshold; the returned lattice's
        keys are then a complete candidate superset of the globally
        frequent rules.  Resets the per-run state; call
        :meth:`finalize_stats` afterwards if the run skips
        :meth:`run`'s emission step.
        """
        self._reset()
        threshold = data.min_count if min_count is None else min_count
        elementary = self._elementary_rules(data)
        elementary = self._prune(elementary, threshold)
        self.lattice_sizes[(1, 1)] = len(elementary)

        body_min, body_max = directives.body_card
        head_min, head_max = directives.head_card

        lattice: Dict[Tuple[int, int], RuleSet] = {(1, 1): elementary}
        frontier = [(1, 1)]
        while frontier:
            next_frontier: List[Tuple[int, int]] = []
            for m, n in frontier:
                current = lattice[(m, n)]
                if not current:
                    continue
                if body_max is None or m + 1 <= body_max:
                    self._compute_set(
                        lattice, (m + 1, n), threshold, next_frontier
                    )
                if head_max is None or n + 1 <= head_max:
                    self._compute_set(
                        lattice, (m, n + 1), threshold, next_frontier
                    )
            frontier = next_frontier
        return lattice

    def exact_counts(
        self,
        data: GeneralInput,
        rule_keys: List[RuleKey],
        bodies: List[Tuple[int, ...]],
    ) -> Tuple[List[int], List[int]]:
        """Exact per-input counts for candidate rules mined elsewhere
        (the sharded recount pass).

        For each canonical key in ``rule_keys`` the rule's
        distinct-group support count on *data*; for each sorted body
        tuple in ``bodies`` its distinct-group occurrence count.  A
        composite rule's support set equals the intersection of the
        elementary supports of every (body item, head item) pair —
        exactly what the lattice joins compute, independent of join
        order — so the counts here match what :meth:`run` would
        observe.  Both counts are additive across gid-disjoint inputs,
        which is what makes the shard merge exact.
        """
        self._reset()
        elementary = self._elementary_rules(data)
        support_counts: List[int] = []
        for body, head in rule_keys:
            shared: Optional[Support] = None
            empty = False
            for bid in body:
                if empty:
                    break
                for hid in head:
                    support = elementary.get(((bid,), (hid,)))
                    if not support:
                        empty = True
                        break
                    shared = support if shared is None else shared & support
                    if not shared:
                        empty = True
                        break
            support_counts.append(
                0 if empty or shared is None else self._group_count(shared)
            )
        occurrences = self._body_occurrence_index(data)
        cache: Dict[Tuple[int, ...], int] = {}
        body_counts = [
            self._body_count(body, occurrences, cache) for body in bodies
        ]
        self.finalize_stats()
        return support_counts, body_counts

    def _reset(self) -> None:
        self.lattice_sizes = {}
        self.join_pairs_examined = 0
        self.bitmap_stats.clear()
        self._triples = (
            GroupedUniverse() if self.representation == "bitset" else None
        )
        self._body_pairs = None

    def finalize_stats(self) -> None:
        """Fold the universe counters of the finished run into
        :attr:`bitmap_stats` (idempotence not required: call once)."""
        if self._triples is not None:
            stats = self.bitmap_stats
            stats.universe_sizes["triple"] = len(self._triples)
            if self._body_pairs is not None:
                stats.universe_sizes["body_pair"] = len(self._body_pairs)
            stats.popcount_calls += self._triples.group_count_calls
            if self._body_pairs is not None:
                stats.popcount_calls += self._body_pairs.group_count_calls

    # ------------------------------------------------------------------
    # elementary rules
    # ------------------------------------------------------------------

    def _elementary_rules(self, data: GeneralInput) -> RuleSet:
        if self._triples is not None:
            return self._elementary_bitmaps(data)
        supports: RuleSet = {}
        if data.elementary is not None:
            # Precomputed in SQL (queries Q8..Q10).
            for gid, bcid, hcid, bid, hid in data.elementary:
                key = ((bid,), (hid,))
                supports.setdefault(key, set()).add((gid, bcid, hcid))
            return supports

        # Derived here: lazy cartesian product within valid cluster pairs.
        for gid in data.body_items:
            body_clusters = data.body_items.get(gid, {})
            head_clusters = data.head_items.get(gid, {})
            for bc, hc in data.group_cluster_pairs(gid):
                body_ids = body_clusters.get(bc)
                head_ids = head_clusters.get(hc)
                if not body_ids or not head_ids:
                    continue
                exclude_equal = data.same_schema and bc == hc
                triple = (gid, bc, hc)
                for bid in body_ids:
                    for hid in head_ids:
                        if exclude_equal and bid == hid:
                            continue
                        key = ((bid,), (hid,))
                        supports.setdefault(key, set()).add(triple)
        return supports

    def _elementary_bitmaps(self, data: GeneralInput) -> RuleSet:
        """Bitset-mode elementary rules: triple slots are interned in
        gid order (contiguous spans per group), support sets are
        bitmaps over those slots."""
        triples = self._triples
        assert triples is not None
        supports: Dict[RuleKey, int] = {}
        get = supports.get
        if data.elementary is not None:
            # Precomputed in SQL; sort so each gid's slots stay
            # contiguous regardless of the table's row order.
            for gid, bcid, hcid, bid, hid in sorted(data.elementary):
                bit = 1 << triples.slot((gid, bcid, hcid))
                key = ((bid,), (hid,))
                supports[key] = get(key, 0) | bit
            return supports

        # Derived here: lazy cartesian product within valid cluster
        # pairs, one gid at a time (preserving slot contiguity).
        for gid in data.body_items:
            body_clusters = data.body_items.get(gid, {})
            head_clusters = data.head_items.get(gid, {})
            for bc, hc in data.group_cluster_pairs(gid):
                body_ids = body_clusters.get(bc)
                head_ids = head_clusters.get(hc)
                if not body_ids or not head_ids:
                    continue
                exclude_equal = data.same_schema and bc == hc
                bit = 1 << triples.slot((gid, bc, hc))
                for bid in body_ids:
                    for hid in head_ids:
                        if exclude_equal and bid == hid:
                            continue
                        key = ((bid,), (hid,))
                        supports[key] = get(key, 0) | bit
        return supports

    def _prune(self, rules: RuleSet, min_count: int) -> RuleSet:
        return {
            key: support
            for key, support in rules.items()
            if self._group_count(support) >= min_count
        }

    # ------------------------------------------------------------------
    # lattice expansion
    # ------------------------------------------------------------------

    def _compute_set(
        self,
        lattice: Dict[Tuple[int, int], RuleSet],
        target: Tuple[int, int],
        min_count: int,
        frontier: List[Tuple[int, int]],
    ) -> None:
        """Compute rule set *target* once, from its smaller parent."""
        if target in lattice:
            return
        faults.check("core.lattice")
        m, n = target
        parents: List[Tuple[Tuple[int, int], str]] = []
        if m >= 2 and (m - 1, n) in lattice:
            parents.append(((m - 1, n), "body"))
        if n >= 2 and (m, n - 1) in lattice:
            parents.append(((m, n - 1), "head"))
        if not parents:
            return
        if self.parent_strategy == "smaller":
            # "start from the set with lower cardinality"
            parents.sort(key=lambda entry: len(lattice[entry[0]]))
        elif self.parent_strategy == "head":
            parents.sort(key=lambda entry: entry[1] != "head")
        else:  # "body"
            parents.sort(key=lambda entry: entry[1] != "body")
        parent_key, direction = parents[0]
        parent = lattice[parent_key]
        if direction == "body":
            result = self._extend_body(parent, min_count)
        else:
            result = self._extend_head(parent, min_count)
        lattice[target] = result
        self.lattice_sizes[target] = len(result)
        if result:
            frontier.append(target)

    def _extend_body(self, rules: RuleSet, min_count: int) -> RuleSet:
        """(m, n) -> (m+1, n): join rules sharing head and body prefix."""
        siblings: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]],
            List[Tuple[Tuple[int, ...], Support]],
        ] = {}
        for (body, head), support in rules.items():
            siblings.setdefault((head, body[:-1]), []).append((body, support))
        out: RuleSet = {}
        for (head, _prefix), entries in siblings.items():
            entries.sort(key=lambda e: e[0])
            for (b1, t1), (b2, t2) in itertools.combinations(entries, 2):
                self.join_pairs_examined += 1
                new_body = b1 + (b2[-1],)
                shared = t1 & t2
                if self._group_count(shared) >= min_count:
                    out[(new_body, head)] = shared
        return out

    def _extend_head(self, rules: RuleSet, min_count: int) -> RuleSet:
        """(m, n) -> (m, n+1): join rules sharing body and head prefix."""
        siblings: Dict[
            Tuple[Tuple[int, ...], Tuple[int, ...]],
            List[Tuple[Tuple[int, ...], Support]],
        ] = {}
        for (body, head), support in rules.items():
            siblings.setdefault((body, head[:-1]), []).append((head, support))
        out: RuleSet = {}
        for (body, _prefix), entries in siblings.items():
            entries.sort(key=lambda e: e[0])
            for (h1, t1), (h2, t2) in itertools.combinations(entries, 2):
                self.join_pairs_examined += 1
                new_head = h1 + (h2[-1],)
                shared = t1 & t2
                if self._group_count(shared) >= min_count:
                    out[(body, new_head)] = shared
        return out

    def _group_count(self, support: Support) -> int:
        """Distinct groups in a rule's support set."""
        if self._triples is not None:
            return self._triples.group_count(support)
        return len({gid for gid, _, _ in support})

    # ------------------------------------------------------------------
    # rule emission
    # ------------------------------------------------------------------

    def _emit(
        self,
        lattice: Dict[Tuple[int, int], RuleSet],
        data: GeneralInput,
        directives: CoreDirectives,
    ) -> List[EncodedRule]:
        body_min, body_max = directives.body_card
        head_min, head_max = directives.head_card
        min_confidence = directives.min_confidence

        body_occurrences = self._body_occurrence_index(data)
        body_count_cache: Dict[Tuple[int, ...], int] = {}

        rules: List[EncodedRule] = []
        for (m, n), rule_set in lattice.items():
            if m < body_min or (body_max is not None and m > body_max):
                continue
            if n < head_min or (head_max is not None and n > head_max):
                continue
            for (body, head), support in rule_set.items():
                support_count = self._group_count(support)
                body_count = self._body_count(
                    body, body_occurrences, body_count_cache
                )
                confidence = (
                    support_count / body_count if body_count else 0.0
                )
                if confidence + _EPSILON < min_confidence:
                    continue
                rules.append(
                    EncodedRule(
                        body=frozenset(body),
                        head=frozenset(head),
                        support_count=support_count,
                        body_count=body_count,
                        support=(
                            support_count / data.totg if data.totg else 0.0
                        ),
                        confidence=confidence,
                    )
                )
        rules.sort(key=EncodedRule.key)
        return rules

    def _body_occurrence_index(
        self, data: GeneralInput
    ) -> Dict[int, Union[Set[Tuple[int, int]], int]]:
        """item id -> occurrences as (group, body cluster): a tuple set
        in set mode, a bitmap over the (gid, cid) universe in bitset
        mode (interned per gid, preserving span contiguity)."""
        if self.representation == "bitset":
            pairs = GroupedUniverse()
            self._body_pairs = pairs
            bitmap_index: Dict[int, int] = {}
            get = bitmap_index.get
            for gid, clusters in data.body_items.items():
                for cid, items in clusters.items():
                    bit = 1 << pairs.slot((gid, cid))
                    for bid in items:
                        bitmap_index[bid] = get(bid, 0) | bit
            return bitmap_index
        index: Dict[int, Set[Tuple[int, int]]] = {}
        for gid, clusters in data.body_items.items():
            for cid, items in clusters.items():
                for bid in items:
                    index.setdefault(bid, set()).add((gid, cid))
        return index

    def _body_count(
        self,
        body: Tuple[int, ...],
        occurrences: Dict[int, Union[Set[Tuple[int, int]], int]],
        cache: Dict[Tuple[int, ...], int],
    ) -> int:
        """Groups where all body items co-occur in one body cluster."""
        cached = cache.get(body)
        if cached is not None:
            return cached
        if self._body_pairs is not None:
            shared = -1
            for bid in body:
                bitmap = occurrences.get(bid)
                if not bitmap:
                    shared = 0
                    break
                shared &= bitmap
                self.bitmap_stats.intersections += 1
                if not shared:
                    break
            count = (
                self._body_pairs.group_count(shared) if shared > 0 else 0
            )
            cache[body] = count
            return count
        sets = [occurrences.get(bid, set()) for bid in body]
        if not sets or any(not s for s in sets):
            cache[body] = 0
            return 0
        sets.sort(key=len)
        shared = set(sets[0])
        for other in sets[1:]:
            shared &= other
            if not shared:
                break
        count = len({gid for gid, _ in shared})
        cache[body] = count
        return count
