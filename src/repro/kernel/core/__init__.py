"""The core operator (Section 4.3).

"The core operator performs the actual discovery of the association
rules that satisfy the mining request; it incorporates all those
computations which cannot efficiently be programmed as SQL queries."

Two variants exist, selected by the translator's directives:

* :class:`~repro.kernel.core.simple.SimpleCoreOperator` — classic
  large-itemset mining (Section 4.3.1), delegating the itemset phase
  to a pluggable algorithm from :mod:`repro.algorithms`;
* :class:`~repro.kernel.core.general.GeneralCoreOperator` — the m x n
  rule lattice over elementary rules (Section 4.3.2), supporting
  clusters, cluster-pair selection and SQL-evaluated mining conditions.
"""

from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.core.inputs import CoreInputLoader, GeneralInput, SimpleInput
from repro.kernel.core.rules import EncodedRule
from repro.kernel.core.simple import SimpleCoreOperator

__all__ = [
    "CoreInputLoader",
    "EncodedRule",
    "GeneralCoreOperator",
    "GeneralInput",
    "SimpleCoreOperator",
    "SimpleInput",
]
