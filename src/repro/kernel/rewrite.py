"""Expression rewriting used by the translator.

The search conditions written inside a MINE RULE statement reference
the *source* schema with BODY/HEAD qualifiers; the generated queries
evaluate them against *encoded* tables under different aliases, and
aggregate functions in the cluster condition are precomputed per
cluster by query Q6 (Section 4.2.2).  This module provides the
structural transformation: qualifier remapping and
aggregate-to-column substitution.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.minerule.errors import MineRuleValidationError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import AGGREGATE_NAMES
from repro.sqlengine.render import render_expr


def transform(
    expr: ast.Expression, fn: Callable[[ast.Expression], Optional[ast.Expression]]
) -> ast.Expression:
    """Rebuild *expr* top-down; *fn* may return a replacement for any
    node (or None to recurse into it unchanged).  A replaced node is
    not descended into, so e.g. an aggregate call can be swapped for a
    column reference before its arguments would be rewritten."""
    replacement = fn(expr)
    if replacement is not None:
        return replacement
    return _rebuild(expr, fn)


def _rebuild(expr, fn):
    recurse = lambda e: transform(e, fn)  # noqa: E731 - local shorthand
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, recurse(expr.left), recurse(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, recurse(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            expr.name,
            tuple(recurse(a) for a in expr.args),
            distinct=expr.distinct,
            star=expr.star,
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            recurse(expr.expr), recurse(expr.low), recurse(expr.high), expr.negated
        )
    if isinstance(expr, ast.InList):
        return ast.InList(
            recurse(expr.expr),
            tuple(recurse(i) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.Like):
        return ast.Like(recurse(expr.expr), recurse(expr.pattern), expr.negated)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(recurse(expr.expr), expr.negated)
    if isinstance(expr, ast.Case):
        return ast.Case(
            recurse(expr.operand) if expr.operand is not None else None,
            tuple((recurse(c), recurse(r)) for c, r in expr.whens),
            recurse(expr.else_) if expr.else_ is not None else None,
        )
    if isinstance(expr, ast.Cast):
        return ast.Cast(recurse(expr.expr), expr.target)
    if isinstance(expr, ast.TupleExpr):
        return ast.TupleExpr(tuple(recurse(i) for i in expr.items))
    # Literals, column refs, host vars, subqueries: leaves for rewriting.
    return expr


def requalify(expr: ast.Expression, mapping: Dict[str, str]) -> ast.Expression:
    """Remap column-reference qualifiers (case-insensitive keys)."""
    lowered = {k.lower(): v for k, v in mapping.items()}

    def rewrite(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.ColumnRef):
            key = (node.qualifier or "").lower()
            if key in lowered:
                return ast.ColumnRef(lowered[key], node.name)
        return None

    return transform(expr, rewrite)


# ---------------------------------------------------------------------------
# Cluster-condition aggregates (directive F, queries Q6/Q7)
# ---------------------------------------------------------------------------


class ClusterAggregate:
    """One aggregate occurring in the cluster condition.

    ``column`` is the per-cluster column computed by Q6;
    ``source_sql`` is the aggregate rendered over the source alias S
    (qualifiers stripped); ``side`` records whether the aggregate was
    written over BODY or HEAD attributes, which decides whether Q7
    reads it from the body-cluster (BC) or head-cluster (HC) row.
    """

    def __init__(self, node: ast.FunctionCall, column: str, side: str):
        self.node = node
        self.column = column
        self.side = side
        stripped = requalify(node, {"BODY": "S", "HEAD": "S"})
        self.source_sql = render_expr(stripped)

    @property
    def canonical(self) -> str:
        return self.source_sql


def collect_cluster_aggregates(
    condition: ast.Expression,
) -> List[ClusterAggregate]:
    """Find aggregate calls in a cluster condition and assign them
    Q6 column names (MRAGG1, MRAGG2, ...).  Aggregates over the same
    source expression share one column even if written once for BODY
    and once for HEAD."""
    aggregates: List[ClusterAggregate] = []
    by_canonical: Dict[str, str] = {}

    for node in ast.walk_expression(condition):
        if not isinstance(node, ast.FunctionCall):
            continue
        if not (node.name in AGGREGATE_NAMES or node.star):
            continue
        side = _aggregate_side(node)
        probe = ClusterAggregate(node, "?", side)
        column = by_canonical.get(probe.canonical)
        if column is None:
            column = f"MRAGG{len(by_canonical) + 1}"
            by_canonical[probe.canonical] = column
        aggregates.append(ClusterAggregate(node, column, side))
    return aggregates


def _aggregate_side(node: ast.FunctionCall) -> str:
    if node.star:
        raise MineRuleValidationError(
            "COUNT(*) in a cluster condition is ambiguous: qualify the "
            "aggregated attribute with BODY or HEAD (e.g. COUNT(BODY.item))",
            check=3,
        )
    sides = set()
    for arg in node.args:
        for ref in ast.walk_expression(arg):
            if isinstance(ref, ast.ColumnRef):
                qualifier = (ref.qualifier or "").upper()
                sides.add(qualifier)
    if sides == {"BODY"}:
        return "BODY"
    if sides == {"HEAD"}:
        return "HEAD"
    raise MineRuleValidationError(
        f"aggregate {node.name} in a cluster condition must reference "
        f"exactly one side (all arguments BODY.* or all HEAD.*)",
        check=3,
    )


def rewrite_cluster_condition(
    condition: ast.Expression,
    aggregates: List[ClusterAggregate],
    body_alias: str = "BC",
    head_alias: str = "HC",
) -> ast.Expression:
    """Rewrite a cluster condition for query Q7: BODY/HEAD qualifiers
    become the two Clusters aliases, and each aggregate call becomes a
    reference to its precomputed Q6 column on the proper side."""
    by_structure: Dict[Tuple, ClusterAggregate] = {
        _structure_key(a.node): a for a in aggregates
    }

    def rewrite(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.FunctionCall) and (
            node.name in AGGREGATE_NAMES or node.star
        ):
            aggregate = by_structure.get(_structure_key(node))
            if aggregate is not None:
                alias = body_alias if aggregate.side == "BODY" else head_alias
                return ast.ColumnRef(alias, aggregate.column)
        if isinstance(node, ast.ColumnRef):
            qualifier = (node.qualifier or "").upper()
            if qualifier == "BODY":
                return ast.ColumnRef(body_alias, node.name)
            if qualifier == "HEAD":
                return ast.ColumnRef(head_alias, node.name)
        return None

    return transform(condition, rewrite)


def _structure_key(expr: ast.Expression) -> Tuple:
    """A hashable structural fingerprint of an expression."""
    return tuple(
        (type(node).__name__, getattr(node, "name", None),
         getattr(node, "qualifier", None), getattr(node, "value", None),
         getattr(node, "op", None))
        for node in ast.walk_expression(expr)
    )
