"""Process-flow tracing (Figure 3a).

The figure's thick lines — user support -> translator -> preprocessor
-> core operator -> postprocessor -> user support — are recorded as
:class:`ProcessEvent` entries so the FIG3 benchmark can regenerate the
flow and tests can assert the component ordering.

A :class:`ProcessFlow` optionally mirrors phases and events into a
:class:`repro.obs.spans.Tracer`: component phases become spans and
events become instants, so one ``--trace-out`` capture holds the whole
pipeline without the components knowing about the observability layer.
Counters stay local to the flow — the mining system forwards them into
the tracer (and from there into the metrics registry) once at the end
of the run, so a single bump is never recorded twice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.spans import NULL_TRACER, Tracer


@dataclass(frozen=True)
class ProcessEvent:
    """One step of the mining process."""

    component: str  # translator | preprocessor | core | postprocessor
    action: str
    detail: str = ""
    elapsed: float = 0.0

    def __str__(self) -> str:
        detail = f" — {self.detail}" if self.detail else ""
        return f"[{self.component}] {self.action}{detail}"


class ProcessFlow:
    """Collects events and per-component timings during one execution."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.events: List[ProcessEvent] = []
        self.timings: Dict[str, float] = {}
        #: fault/retry/resume counters bumped by the resilience layer
        self.counters: Dict[str, int] = {}
        #: observability sink mirroring phases/events/counters
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._started: Optional[float] = None
        self._component: Optional[str] = None
        self._span = None

    def event(self, component: str, action: str, detail: str = "") -> None:
        self.events.append(ProcessEvent(component, action, detail))
        if detail:
            self.tracer.instant(
                f"{component}: {action}", category=component, detail=detail
            )
        else:
            self.tracer.instant(f"{component}: {action}", category=component)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment a named counter (faults, retries, stages_resumed,
        degradations) surfaced by :meth:`render`."""
        if amount:
            self.counters[counter] = self.counters.get(counter, 0) + amount

    def start(self, component: str) -> None:
        """Begin timing a component phase."""
        self._component = component
        self._started = time.perf_counter()
        self._span = self.tracer.begin(component, category="component")

    def stop(self) -> float:
        """End the current phase; accumulates into :attr:`timings`."""
        if self._span is not None:
            self.tracer.end(self._span)
            self._span = None
        if self._started is None or self._component is None:
            return 0.0
        elapsed = time.perf_counter() - self._started
        self.timings[self._component] = (
            self.timings.get(self._component, 0.0) + elapsed
        )
        self._started = None
        self._component = None
        return elapsed

    def components(self) -> List[str]:
        """Distinct components in first-event order (FIG3 assertion)."""
        seen: List[str] = []
        for event in self.events:
            if event.component not in seen:
                seen.append(event.component)
        return seen

    def render(self) -> str:
        lines = [str(event) for event in self.events]
        if self.timings:
            lines.append("-- timings --")
            for component, elapsed in self.timings.items():
                lines.append(f"{component}: {elapsed * 1000:.2f} ms")
        if self.counters:
            lines.append("-- counters --")
            for counter, value in sorted(self.counters.items()):
                lines.append(f"{counter}: {value}")
        return "\n".join(lines)
