"""Names of the working objects created during one mining execution.

The paper uses fixed table names (Source, ValidGroups, Bset, ...); the
:class:`Workspace` prefixes them so several MINE RULE executions can
coexist in one database and so that encoded tables can be kept around
for preprocessing reuse ("the same preprocessing could be in common to
the execution of several data mining queries", Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class Workspace:
    """Derives every working-object name from a prefix."""

    prefix: str = "MR"

    # -- tables / views of Figure 4 ------------------------------------

    @property
    def source(self) -> str:
        return f"{self.prefix}_Source"

    @property
    def valid_groups_view(self) -> str:
        return f"{self.prefix}_ValidGroupsView"

    @property
    def valid_groups(self) -> str:
        return f"{self.prefix}_ValidGroups"

    @property
    def distinct_groups_in_body(self) -> str:
        return f"{self.prefix}_DistinctGroupsInBody"

    @property
    def bset(self) -> str:
        return f"{self.prefix}_Bset"

    @property
    def distinct_groups_in_head(self) -> str:
        return f"{self.prefix}_DistinctGroupsInHead"

    @property
    def hset(self) -> str:
        return f"{self.prefix}_Hset"

    @property
    def clusters(self) -> str:
        return f"{self.prefix}_Clusters"

    @property
    def cluster_couples(self) -> str:
        return f"{self.prefix}_ClusterCouples"

    @property
    def mining_source(self) -> str:
        return f"{self.prefix}_MiningSource"

    @property
    def coded_source(self) -> str:
        return f"{self.prefix}_CodedSource"

    @property
    def input_rules_raw(self) -> str:
        return f"{self.prefix}_InputRulesRaw"

    @property
    def large_rules(self) -> str:
        return f"{self.prefix}_LargeRules"

    @property
    def input_rules(self) -> str:
        return f"{self.prefix}_InputRules"

    @property
    def output_bodies(self) -> str:
        return f"{self.prefix}_OutputBodies"

    @property
    def output_heads(self) -> str:
        return f"{self.prefix}_OutputHeads"

    # -- sequences -------------------------------------------------------

    @property
    def gid_sequence(self) -> str:
        return f"{self.prefix}_Gidsequence"

    @property
    def bid_sequence(self) -> str:
        return f"{self.prefix}_Bidsequence"

    @property
    def hid_sequence(self) -> str:
        return f"{self.prefix}_Hidsequence"

    @property
    def cid_sequence(self) -> str:
        return f"{self.prefix}_Cidsequence"

    # -- enumerations used by the cleanup program -----------------------

    def all_tables(self) -> List[str]:
        return [
            self.source,
            self.valid_groups,
            self.distinct_groups_in_body,
            self.bset,
            self.distinct_groups_in_head,
            self.hset,
            self.clusters,
            self.cluster_couples,
            self.mining_source,
            self.coded_source,  # a table on the simple path, a view otherwise
            self.input_rules_raw,
            self.large_rules,
            self.input_rules,
            self.output_bodies,
            self.output_heads,
        ]

    def all_views(self) -> List[str]:
        return [self.source, self.valid_groups_view, self.coded_source]

    def all_sequences(self) -> List[str]:
        return [
            self.gid_sequence,
            self.bid_sequence,
            self.hid_sequence,
            self.cid_sequence,
        ]
