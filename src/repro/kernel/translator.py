"""The Translator (Section 4.1).

"The translator interpretes a MINE RULE statement, checks the
correctness of the statement by accessing the DBMS Data Dictionary, and
produces translation programs used by the preprocessor and
postprocessor."

The emitted SQL follows Appendix A for simple association rules
(queries Q0..Q4) and Section 4.2.2 for general rules (Q5..Q11); each
query carries the paper's label so the FIG4 benchmark can show which
queries each statement class activates.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.kernel.names import Workspace
from repro.kernel.program import (
    CoreDirectives,
    TranslationProgram,
    TranslationQuery,
)
from repro.kernel.rewrite import (
    ClusterAggregate,
    collect_cluster_aggregates,
    requalify,
    rewrite_cluster_condition,
)
from repro.minerule.classifier import Directives, classify
from repro.minerule.errors import MineRuleValidationError
from repro.minerule.parser import parse_mine_rule
from repro.minerule.statements import MineRuleStatement
from repro.minerule.validator import validate
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.engine import Database
from repro.sqlengine.render import render_expr


class Translator:
    """Turns MINE RULE statements into translation programs."""

    def __init__(self, database: Database):
        self._db = database

    # ------------------------------------------------------------------

    def translate(
        self,
        statement: Union[str, MineRuleStatement],
        workspace: Optional[Workspace] = None,
    ) -> TranslationProgram:
        """Parse (if needed), validate, classify and emit the program."""
        if isinstance(statement, str):
            statement = parse_mine_rule(statement)
        workspace = workspace or Workspace()

        source_columns = self._source_columns(statement)
        validate(statement, source_columns)
        self._check_reserved_names(statement)
        directives = classify(statement)

        program = TranslationProgram(
            statement=statement,
            directives=directives,
            workspace=workspace,
        )
        self._emit_setup(program)
        if directives.simple:
            self._emit_simple_preprocessing(program)
        else:
            self._emit_general_preprocessing(program)
        self._emit_postprocessing(program)
        program.core = self._core_directives(program)
        return program

    # ------------------------------------------------------------------
    # data dictionary access
    # ------------------------------------------------------------------

    def _source_columns(self, statement: MineRuleStatement) -> List[str]:
        """Columns visible in the FROM list (data dictionary check)."""
        columns: List[str] = []
        for table_ref in statement.from_list:
            for name, _ in self._db.catalog.describe(table_ref.name):
                columns.append(name)
        return columns

    #: column names the encoding queries generate; attributes with these
    #: names would collide inside the encoded tables (e.g. Q2b selects
    #: "Gid, V.*"), so the translator rejects them up front.
    RESERVED_ENCODING_NAMES = frozenset(
        {"gid", "cid", "bid", "hid", "bcid", "hcid",
         "groupcount", "bodyid", "headid"}
    )

    def _check_reserved_names(self, statement: MineRuleStatement) -> None:
        used = set()
        for attrs in (
            statement.body.attributes,
            statement.head.attributes,
            statement.group_attributes,
            statement.cluster_attributes,
            self._condition_attributes(statement.mining_condition),
        ):
            used.update(a.lower() for a in attrs)
        collisions = used & self.RESERVED_ENCODING_NAMES
        if collisions:
            raise MineRuleValidationError(
                f"attribute name(s) {', '.join(sorted(collisions))} collide "
                f"with the identifier columns of the encoded tables "
                f"(reserved: Gid, Cid, Bid, Hid, BCid, HCid, GroupCount, "
                f"BodyId, HeadId); rename the column or alias it in a view"
            )

    # ------------------------------------------------------------------
    # attribute bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _condition_attributes(expr: Optional[ast.Expression]) -> List[str]:
        if expr is None:
            return []
        return [
            node.name
            for node in ast.walk_expression(expr)
            if isinstance(node, ast.ColumnRef)
        ]

    def _needed_attributes(self, statement: MineRuleStatement) -> List[str]:
        """The <needed attr list> of query Q0: union of the body, head,
        group and cluster schemas plus attributes used by the mining
        condition and by aggregates in the HAVING conditions."""
        ordered: List[str] = []
        seen = set()
        chunks: List[Sequence[str]] = [
            statement.body.attributes,
            statement.head.attributes,
            statement.group_attributes,
            statement.cluster_attributes,
            self._condition_attributes(statement.mining_condition),
            self._condition_attributes(statement.group_condition),
            self._condition_attributes(statement.cluster_condition),
        ]
        for chunk in chunks:
            for attr in chunk:
                if attr.lower() not in seen:
                    seen.add(attr.lower())
                    ordered.append(attr)
        return ordered

    def _mining_attributes(self, statement: MineRuleStatement) -> List[str]:
        """<mine attr list>: attributes referenced in the mining
        condition (deduplicated, order of first appearance)."""
        ordered: List[str] = []
        seen = set()
        for attr in self._condition_attributes(statement.mining_condition):
            if attr.lower() not in seen:
                seen.add(attr.lower())
                ordered.append(attr)
        return ordered

    @staticmethod
    def _eq_join(left: str, right: str, attributes: Sequence[str]) -> str:
        return " AND ".join(
            f"{left}.{attr} = {right}.{attr}" for attr in attributes
        )

    @staticmethod
    def _attr_list(alias: Optional[str], attributes: Sequence[str]) -> str:
        if alias:
            return ", ".join(f"{alias}.{a}" for a in attributes)
        return ", ".join(attributes)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _emit_setup(self, program: TranslationProgram) -> None:
        names = program.workspace
        out = program.statement.output_table
        queries: List[TranslationQuery] = []
        for view in names.all_views():
            queries.append(
                TranslationQuery(
                    "CLEAN", "drop stale view", f"DROP VIEW IF EXISTS {view}"
                )
            )
        for table in names.all_tables() + [
            out,
            f"{out}_Bodies",
            f"{out}_Heads",
            f"{out}_Display",
        ]:
            queries.append(
                TranslationQuery(
                    "CLEAN", "drop stale table", f"DROP TABLE IF EXISTS {table}"
                )
            )
        for sequence in names.all_sequences():
            queries.append(
                TranslationQuery(
                    "CLEAN",
                    "drop stale sequence",
                    f"DROP SEQUENCE IF EXISTS {sequence}",
                )
            )
        directives = program.directives
        sequences = [names.gid_sequence, names.bid_sequence]
        if directives.H:
            sequences.append(names.hid_sequence)
        if directives.C:
            sequences.append(names.cid_sequence)
        for sequence in sequences:
            queries.append(
                TranslationQuery(
                    "SEQ",
                    "identifier generator (Appendix A)",
                    f"CREATE SEQUENCE {sequence}",
                )
            )
        program.setup = queries

    # ------------------------------------------------------------------
    # shared queries Q0..Q4 (Appendix A)
    # ------------------------------------------------------------------

    def _emit_common_head(self, program: TranslationProgram) -> None:
        """Queries Q0, Q1, Q2, Q3 are shared by the simple and general
        preprocessing (Section 4.2.2)."""
        statement = program.statement
        directives = program.directives
        names = program.workspace
        queries = program.preprocessing

        needed = self._needed_attributes(statement)
        from_list = ", ".join(
            f"{t.name} {t.alias}" if t.alias else t.name
            for t in statement.from_list
        )

        if directives.W:
            where = ""
            if statement.source_condition is not None:
                where = f" WHERE {render_expr(statement.source_condition)}"
            queries.append(
                TranslationQuery(
                    "Q0",
                    "materialize the Source view (FROM .. WHERE)",
                    f"INSERT INTO {names.source} "
                    f"(SELECT {', '.join(needed)} FROM {from_list}{where})",
                )
            )
        else:
            # W false: Q0 is skipped; Source aliases the base table
            # through a non-materialized view (no computation).
            queries.append(
                TranslationQuery(
                    "Q0v",
                    "Q0 skipped (single table, no source condition): "
                    "Source is a plain view",
                    f"CREATE VIEW {names.source} AS "
                    f"(SELECT {', '.join(needed)} FROM {from_list})",
                )
            )

        group_attrs = statement.group_attributes
        queries.append(
            TranslationQuery(
                "Q1",
                "count the total number of groups (:totg)",
                f"SELECT COUNT(*) INTO :totg FROM "
                f"(SELECT DISTINCT {', '.join(group_attrs)} "
                f"FROM {names.source})",
            )
        )

        having = ""
        if directives.G:
            having = f" HAVING {render_expr(statement.group_condition)}"
        queries.append(
            TranslationQuery(
                "Q2a",
                "valid groups view (GROUP BY .. HAVING)",
                f"CREATE VIEW {names.valid_groups_view} AS "
                f"(SELECT {', '.join(group_attrs)} FROM {names.source} "
                f"GROUP BY {', '.join(group_attrs)}{having})",
            )
        )
        queries.append(
            TranslationQuery(
                "Q2b",
                "encode groups with Gid (sequence)",
                f"INSERT INTO {names.valid_groups} "
                f"(SELECT {names.gid_sequence}.NEXTVAL AS Gid, V.* "
                f"FROM {names.valid_groups_view} AS V)",
            )
        )
        program.schemas[names.valid_groups] = ["Gid"] + list(group_attrs)

        self._emit_item_encoding(
            program,
            label="Q3",
            schema=statement.body.attributes,
            staging=names.distinct_groups_in_body,
            target=names.bset,
            id_column="Bid",
            sequence=names.bid_sequence,
        )

    def _emit_item_encoding(
        self,
        program: TranslationProgram,
        label: str,
        schema: Sequence[str],
        staging: str,
        target: str,
        id_column: str,
        sequence: str,
    ) -> None:
        """Item encoding (query Q3 for bodies, Q5 for heads): stage the
        distinct (element, group) pairs, then keep elements appearing
        in at least :mingroups valid groups."""
        statement = program.statement
        directives = program.directives
        names = program.workspace
        group_attrs = statement.group_attributes

        if directives.G:
            # Count occurrences within *valid* groups only.
            stage_sql = (
                f"INSERT INTO {staging} "
                f"(SELECT DISTINCT {self._attr_list('S', schema)}, "
                f"{self._attr_list('S', group_attrs)} "
                f"FROM {names.source} S, {names.valid_groups} V "
                f"WHERE {self._eq_join('S', 'V', group_attrs)})"
            )
        else:
            stage_sql = (
                f"INSERT INTO {staging} "
                f"(SELECT DISTINCT {', '.join(schema)}, "
                f"{', '.join(group_attrs)} FROM {names.source})"
            )
        program.preprocessing.append(
            TranslationQuery(
                f"{label}a",
                f"distinct (element, group) pairs for {target}",
                stage_sql,
            )
        )
        program.preprocessing.append(
            TranslationQuery(
                f"{label}b",
                f"encode large elements into {target} "
                f"(HAVING COUNT(*) >= :mingroups)",
                f"INSERT INTO {target} "
                f"(SELECT {sequence}.NEXTVAL AS {id_column}, "
                f"{', '.join(schema)}, COUNT(*) AS GroupCount "
                f"FROM {staging} GROUP BY {', '.join(schema)} "
                f"HAVING COUNT(*) >= :mingroups)",
            )
        )
        program.schemas[target] = [id_column] + list(schema) + ["GroupCount"]

    # ------------------------------------------------------------------
    # simple preprocessing (Figure 4a)
    # ------------------------------------------------------------------

    def _emit_simple_preprocessing(self, program: TranslationProgram) -> None:
        statement = program.statement
        names = program.workspace
        self._emit_common_head(program)

        group_attrs = statement.group_attributes
        body_schema = statement.body.attributes
        program.preprocessing.append(
            TranslationQuery(
                "Q4",
                "encode the source: CodedSource(Gid, Bid)",
                f"INSERT INTO {names.coded_source} "
                f"(SELECT DISTINCT V.Gid, B.Bid "
                f"FROM {names.source} S, {names.valid_groups} V, "
                f"{names.bset} B "
                f"WHERE {self._eq_join('S', 'V', group_attrs)} "
                f"AND {self._eq_join('S', 'B', body_schema)})",
            )
        )
        program.schemas[names.coded_source] = ["Gid", "Bid"]

    # ------------------------------------------------------------------
    # general preprocessing (Figure 4b)
    # ------------------------------------------------------------------

    def _emit_general_preprocessing(self, program: TranslationProgram) -> None:
        statement = program.statement
        directives = program.directives
        names = program.workspace
        queries = program.preprocessing

        self._emit_common_head(program)
        group_attrs = statement.group_attributes

        if directives.H:
            self._emit_item_encoding(
                program,
                label="Q5",
                schema=statement.head.attributes,
                staging=names.distinct_groups_in_head,
                target=names.hset,
                id_column="Hid",
                sequence=names.hid_sequence,
            )

        aggregates: List[ClusterAggregate] = []
        if directives.C:
            aggregates = self._emit_q6(program)
        if directives.K:
            self._emit_q7(program, aggregates)

        self._emit_q4b_q11(program)

        if directives.M:
            self._emit_q8_q9_q10(program)

    def _emit_q6(self, program: TranslationProgram) -> List[ClusterAggregate]:
        statement = program.statement
        directives = program.directives
        names = program.workspace
        cluster_attrs = statement.cluster_attributes
        group_attrs = statement.group_attributes

        aggregates: List[ClusterAggregate] = []
        if directives.F:
            aggregates = collect_cluster_aggregates(statement.cluster_condition)

        agg_columns: List[str] = []
        agg_select = ""
        seen = set()
        for aggregate in aggregates:
            if aggregate.column in seen:
                continue
            seen.add(aggregate.column)
            agg_columns.append(aggregate.column)
            agg_select += f", {aggregate.source_sql} AS {aggregate.column}"

        inner = (
            f"SELECT V.Gid AS Gid, "
            f"{self._attr_list('S', cluster_attrs)}{agg_select} "
            f"FROM {names.source} S, {names.valid_groups} V "
            f"WHERE {self._eq_join('S', 'V', group_attrs)} "
            f"GROUP BY V.Gid, {self._attr_list('S', cluster_attrs)}"
        )
        program.preprocessing.append(
            TranslationQuery(
                "Q6",
                "encode clusters (and evaluate cluster-condition "
                "aggregates per cluster)",
                f"INSERT INTO {names.clusters} "
                f"(SELECT {names.cid_sequence}.NEXTVAL AS Cid, T.* "
                f"FROM ({inner}) AS T)",
            )
        )
        program.schemas[names.clusters] = (
            ["Cid", "Gid"] + list(cluster_attrs) + agg_columns
        )
        return aggregates

    def _emit_q7(
        self, program: TranslationProgram, aggregates: List[ClusterAggregate]
    ) -> None:
        statement = program.statement
        names = program.workspace
        condition = rewrite_cluster_condition(
            statement.cluster_condition, aggregates, "BC", "HC"
        )
        program.preprocessing.append(
            TranslationQuery(
                "Q7",
                "select valid (body cluster, head cluster) pairs",
                f"INSERT INTO {names.cluster_couples} "
                f"(SELECT BC.Gid AS Gid, BC.Cid AS BCid, HC.Cid AS HCid "
                f"FROM {names.clusters} BC, {names.clusters} HC "
                f"WHERE BC.Gid = HC.Gid AND {render_expr(condition)})",
            )
        )
        program.schemas[names.cluster_couples] = ["Gid", "BCid", "HCid"]

    def _emit_q4b_q11(self, program: TranslationProgram) -> None:
        statement = program.statement
        directives = program.directives
        names = program.workspace
        group_attrs = statement.group_attributes
        cluster_attrs = statement.cluster_attributes
        mine_attrs = self._mining_attributes(statement)

        select_cols = ["V.Gid AS Gid"]
        coded_cols = ["Gid"]
        if directives.C:
            select_cols.append("C.Cid AS Cid")
            coded_cols.append("Cid")
        select_cols.append("B.Bid AS Bid")
        coded_cols.append("Bid")
        if directives.H:
            select_cols.append("H.Hid AS Hid")
            coded_cols.append("Hid")
        for attr in mine_attrs:
            select_cols.append(f"S.{attr} AS {attr}")

        from_clause = (
            f"{names.source} S JOIN {names.valid_groups} V "
            f"ON {self._eq_join('S', 'V', group_attrs)}"
        )
        if directives.C:
            from_clause += (
                f" JOIN {names.clusters} C "
                f"ON C.Gid = V.Gid AND {self._eq_join('S', 'C', cluster_attrs)}"
            )
        if directives.H:
            from_clause += (
                f" LEFT JOIN {names.bset} B "
                f"ON {self._eq_join('S', 'B', statement.body.attributes)}"
                f" LEFT JOIN {names.hset} H "
                f"ON {self._eq_join('S', 'H', statement.head.attributes)}"
            )
            where = " WHERE B.Bid IS NOT NULL OR H.Hid IS NOT NULL"
        else:
            from_clause += (
                f" JOIN {names.bset} B "
                f"ON {self._eq_join('S', 'B', statement.body.attributes)}"
            )
            where = ""

        program.preprocessing.append(
            TranslationQuery(
                "Q4b",
                "encode the source with mining attributes (MiningSource)",
                f"INSERT INTO {names.mining_source} "
                f"(SELECT DISTINCT {', '.join(select_cols)} "
                f"FROM {from_clause}{where})",
            )
        )
        program.schemas[names.mining_source] = coded_cols + mine_attrs

        program.preprocessing.append(
            TranslationQuery(
                "Q11",
                "CodedSource as a non-materialized view of MiningSource",
                f"CREATE VIEW {names.coded_source} AS "
                f"(SELECT {', '.join(coded_cols)} FROM {names.mining_source})",
            )
        )
        program.schemas[names.coded_source] = coded_cols

    def _emit_q8_q9_q10(self, program: TranslationProgram) -> None:
        statement = program.statement
        directives = program.directives
        names = program.workspace

        head_id = "Hid" if directives.H else "Bid"
        select_cols = ["B.Gid AS Gid"]
        rule_cols = ["Gid"]
        if directives.C:
            select_cols += ["B.Cid AS BCid", "H.Cid AS HCid"]
            rule_cols += ["BCid", "HCid"]
        select_cols += ["B.Bid AS Bid", f"H.{head_id} AS Hid"]
        rule_cols += ["Bid", "Hid"]

        from_tables = f"{names.mining_source} B, {names.mining_source} H"
        conditions = ["B.Gid = H.Gid"]
        if directives.K:
            from_tables += f", {names.cluster_couples} CC"
            conditions += [
                "CC.Gid = B.Gid",
                "CC.BCid = B.Cid",
                "CC.HCid = H.Cid",
            ]
        if directives.H:
            conditions += ["B.Bid IS NOT NULL", "H.Hid IS NOT NULL"]
        else:
            # Same schema: exclude the degenerate elementary rule that
            # pairs an item with itself inside one cluster (or inside
            # the whole group when there are no clusters).
            if directives.C:
                conditions.append("(B.Bid <> H.Bid OR B.Cid <> H.Cid)")
            else:
                conditions.append("B.Bid <> H.Bid")
        mining = requalify(
            statement.mining_condition, {"BODY": "B", "HEAD": "H"}
        )
        conditions.append(render_expr(mining))

        program.preprocessing.append(
            TranslationQuery(
                "Q8",
                "elementary rules: evaluate the mining condition in SQL",
                f"INSERT INTO {names.input_rules_raw} "
                f"(SELECT DISTINCT {', '.join(select_cols)} "
                f"FROM {from_tables} WHERE {' AND '.join(conditions)})",
            )
        )
        program.schemas[names.input_rules_raw] = rule_cols

        program.preprocessing.append(
            TranslationQuery(
                "Q9",
                "support of elementary rules (LargeRules)",
                f"INSERT INTO {names.large_rules} "
                f"(SELECT Bid, Hid, COUNT(DISTINCT Gid) AS GroupCount "
                f"FROM {names.input_rules_raw} GROUP BY Bid, Hid "
                f"HAVING COUNT(DISTINCT Gid) >= :mingroups)",
            )
        )
        program.schemas[names.large_rules] = ["Bid", "Hid", "GroupCount"]

        program.preprocessing.append(
            TranslationQuery(
                "Q10",
                "discard elementary rules without sufficient support "
                "(final InputRules)",
                f"INSERT INTO {names.input_rules} "
                f"(SELECT R.* FROM {names.input_rules_raw} R, "
                f"{names.large_rules} L "
                f"WHERE R.Bid = L.Bid AND R.Hid = L.Hid)",
            )
        )
        program.schemas[names.input_rules] = rule_cols

    # ------------------------------------------------------------------
    # postprocessing (Section 4.4)
    # ------------------------------------------------------------------

    def _emit_postprocessing(self, program: TranslationProgram) -> None:
        statement = program.statement
        directives = program.directives
        names = program.workspace
        out = statement.output_table

        body_schema = statement.body.attributes
        program.postprocessing.append(
            TranslationQuery(
                "P1",
                "decode rule bodies (Appendix A, last query)",
                f"INSERT INTO {out}_Bodies "
                f"(SELECT OutputBodies.BodyId, "
                f"{self._attr_list('Bset', body_schema)} "
                f"FROM {names.output_bodies} OutputBodies, "
                f"{names.bset} Bset "
                f"WHERE OutputBodies.Bid = Bset.Bid)",
            )
        )
        head_schema = statement.head.attributes
        head_table = names.hset if directives.H else names.bset
        head_id = "Hid" if directives.H else "Bid"
        program.postprocessing.append(
            TranslationQuery(
                "P2",
                "decode rule heads",
                f"INSERT INTO {out}_Heads "
                f"(SELECT OutputHeads.HeadId, "
                f"{self._attr_list('Hset', head_schema)} "
                f"FROM {names.output_heads} OutputHeads, "
                f"{head_table} Hset "
                f"WHERE OutputHeads.Hid = Hset.{head_id})",
            )
        )

    # ------------------------------------------------------------------

    def _core_directives(self, program: TranslationProgram) -> CoreDirectives:
        statement = program.statement
        directives = program.directives
        names = program.workspace
        return CoreDirectives(
            simple=directives.simple,
            same_schema=not directives.H,
            clustered=directives.C,
            cluster_condition=directives.K,
            mining_condition=directives.M,
            coded_source=names.coded_source,
            cluster_couples=names.cluster_couples if directives.K else None,
            input_rules=names.input_rules if directives.M else None,
            min_support=statement.min_support,
            min_confidence=statement.min_confidence,
            body_card=(statement.body.card_min, statement.body.card_max),
            head_card=(statement.head.card_min, statement.head.card_max),
        )
