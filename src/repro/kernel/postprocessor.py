"""The Postprocessor (Section 4.4).

The core operator conceptually returns rules as pairs of itemsets of
item identifiers.  To avoid SQL3 set-type constructors ("not
standardized and not yet available on most relational systems") the
rules are stored in a normalized form of three tables:

* ``<out>``               — (BodyId, HeadId [, SUPPORT] [, CONFIDENCE])
* ``OutputBodies``        — (BodyId, Bid), one row per body member
* ``OutputHeads``         — (HeadId, Hid)

:meth:`Postprocessor.store_encoded_rules` is the core operator's output
interface writing those tables; :meth:`Postprocessor.decode` then runs
the translator's postprocessing queries (Appendix A, last query) to
produce the user-readable ``<out>_Bodies`` / ``<out>_Heads`` relations,
plus a denormalized ``<out>_Display`` table serving the paper's
"ease of view" goal (it renders itemsets like ``{brown_boots,jackets}``
exactly as Figure 2b does).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import faults
from repro.kernel.core.rules import EncodedRule
from repro.kernel.program import TranslationProgram
from repro.sqlengine.engine import Database
from repro.sqlengine.types import SqlType

#: decoded item: single attribute value, or tuple for composite schemas
Item = Any


class Postprocessor:
    """Stores encoded rules and decodes them against Bset/Hset."""

    def __init__(self, database: Database):
        self._db = database

    # ------------------------------------------------------------------
    # the core operator's output interface
    # ------------------------------------------------------------------

    def store_encoded_rules(
        self, program: TranslationProgram, rules: Sequence[EncodedRule]
    ) -> None:
        """Write ``<out>``, ``OutputBodies`` and ``OutputHeads``.

        Identical bodies (heads) share one identifier, so the auxiliary
        tables stay normalized.
        """
        started = time.perf_counter()
        with self._db.tracer.span(
            "postprocessor.store", category="postprocessor", rules=len(rules)
        ):
            faults.check("postprocessor.store")
            self._store_encoded_rules(program, rules)
        metrics = self._db.metrics
        if metrics.enabled:
            metrics.histogram(
                "repro_postprocess_seconds",
                "Wall seconds per postprocessor step",
                ("step",),
            ).observe(time.perf_counter() - started, step="store")
            metrics.counter(
                "repro_rules_stored_total",
                "Encoded rules written to the output tables",
            ).inc(len(rules))

    def _store_encoded_rules(
        self, program: TranslationProgram, rules: Sequence[EncodedRule]
    ) -> None:
        statement = program.statement
        names = program.workspace
        out = statement.output_table

        body_ids: Dict[FrozenSet[int], int] = {}
        head_ids: Dict[FrozenSet[int], int] = {}
        body_rows: List[Tuple[int, int]] = []
        head_rows: List[Tuple[int, int]] = []
        rule_rows: List[Tuple[Any, ...]] = []

        for rule in rules:
            body_id = body_ids.get(rule.body)
            if body_id is None:
                body_id = len(body_ids) + 1
                body_ids[rule.body] = body_id
                body_rows.extend((body_id, bid) for bid in sorted(rule.body))
            head_id = head_ids.get(rule.head)
            if head_id is None:
                head_id = len(head_ids) + 1
                head_ids[rule.head] = head_id
                head_rows.extend((head_id, hid) for hid in sorted(rule.head))
            row: List[Any] = [body_id, head_id]
            if statement.select_support:
                row.append(rule.support)
            if statement.select_confidence:
                row.append(rule.confidence)
            rule_rows.append(tuple(row))

        columns = ["BodyId", "HeadId"]
        types: List[Optional[SqlType]] = [SqlType.INTEGER, SqlType.INTEGER]
        if statement.select_support:
            columns.append("SUPPORT")
            types.append(SqlType.REAL)
        if statement.select_confidence:
            columns.append("CONFIDENCE")
            types.append(SqlType.REAL)

        self._db.create_table_from_rows(
            out, columns, rule_rows, types, replace=True
        )
        self._db.create_table_from_rows(
            names.output_bodies,
            ["BodyId", "Bid"],
            body_rows,
            [SqlType.INTEGER, SqlType.INTEGER],
            replace=True,
        )
        self._db.create_table_from_rows(
            names.output_heads,
            ["HeadId", "Hid"],
            head_rows,
            [SqlType.INTEGER, SqlType.INTEGER],
            replace=True,
        )

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def decode(self, program: TranslationProgram) -> None:
        """Run the translator's postprocessing queries, then build the
        display table.

        Idempotent: the decode outputs are dropped first, so a retried
        or resumed decode cannot duplicate rows in ``<out>_Bodies`` /
        ``<out>_Heads``.
        """
        started = time.perf_counter()
        with self._db.tracer.span(
            "postprocessor.decode", category="postprocessor"
        ):
            faults.check("postprocessor.decode")
            out = program.statement.output_table
            for table in (f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
                self._db.catalog.drop_table(table, if_exists=True)
            for query in program.postprocessing:
                self._db.execute(query.sql)
            self._build_display(program)
        metrics = self._db.metrics
        if metrics.enabled:
            metrics.histogram(
                "repro_postprocess_seconds",
                "Wall seconds per postprocessor step",
                ("step",),
            ).observe(time.perf_counter() - started, step="decode")

    def item_decoders(
        self, program: TranslationProgram
    ) -> Tuple[Dict[int, Item], Dict[int, Item]]:
        """(body decoder, head decoder): item id -> user-level value.

        Single-attribute schemas decode to the bare value, composite
        schemas to a tuple in schema order.
        """
        names = program.workspace
        statement = program.statement
        body = self._read_item_table(
            names.bset, "Bid", statement.body.attributes
        )
        if program.directives.H:
            head = self._read_item_table(
                names.hset, "Hid", statement.head.attributes
            )
        else:
            head = body
        return body, head

    def decoded_rules(
        self, program: TranslationProgram, rules: Sequence[EncodedRule]
    ) -> List["DecodedRule"]:
        body_decoder, head_decoder = self.item_decoders(program)
        return [
            DecodedRule(
                body=frozenset(body_decoder[bid] for bid in rule.body),
                head=frozenset(head_decoder[hid] for hid in rule.head),
                support=rule.support,
                confidence=rule.confidence,
            )
            for rule in rules
        ]

    # ------------------------------------------------------------------

    def _read_item_table(
        self, table: str, id_column: str, attributes: Sequence[str]
    ) -> Dict[int, Item]:
        attr_list = ", ".join(attributes)
        rows = self._db.query(f"SELECT {id_column}, {attr_list} FROM {table}")
        if len(attributes) == 1:
            return {row[0]: row[1] for row in rows}
        return {row[0]: tuple(row[1:]) for row in rows}

    def _build_display(self, program: TranslationProgram) -> None:
        statement = program.statement
        out = statement.output_table
        body_decoder, head_decoder = self.item_decoders(program)

        columns = ["BODY", "HEAD"]
        if statement.select_support:
            columns.append("SUPPORT")
        if statement.select_confidence:
            columns.append("CONFIDENCE")

        rows = []
        body_members = self._group_members(
            self._db.query(
                f"SELECT BodyId, Bid FROM {program.workspace.output_bodies}"
            )
        )
        head_members = self._group_members(
            self._db.query(
                f"SELECT HeadId, Hid FROM {program.workspace.output_heads}"
            )
        )
        select_cols = ", ".join(["BodyId", "HeadId"] + columns[2:])
        for row in self._db.query(f"SELECT {select_cols} FROM {out}"):
            body_id, head_id = row[0], row[1]
            display_row = [
                render_itemset(body_members[body_id], body_decoder),
                render_itemset(head_members[head_id], head_decoder),
            ]
            display_row.extend(row[2:])
            rows.append(tuple(display_row))
        rows.sort()
        self._db.create_table_from_rows(
            f"{out}_Display", columns, rows, replace=True
        )

    @staticmethod
    def _group_members(rows: Sequence[Tuple[int, int]]) -> Dict[int, List[int]]:
        members: Dict[int, List[int]] = {}
        for set_id, item_id in rows:
            members.setdefault(set_id, []).append(item_id)
        return members


def render_itemset(item_ids: Sequence[int], decoder: Dict[int, Item]) -> str:
    """``{a,b}`` rendering used by the display table (Figure 2b)."""
    values = sorted(_render_item(decoder[item_id]) for item_id in item_ids)
    return "{" + ",".join(values) + "}"


def _render_item(item: Item) -> str:
    if isinstance(item, tuple):
        return "(" + ",".join(str(v) for v in item) + ")"
    return str(item)


@dataclass(frozen=True)
class DecodedRule:
    """A rule decoded to user-level item values."""

    body: FrozenSet[Item]
    head: FrozenSet[Item]
    support: float
    confidence: float

    def __str__(self) -> str:
        body = "{" + ",".join(sorted(map(str, self.body))) + "}"
        head = "{" + ",".join(sorted(map(str, self.head))) + "}"
        return (
            f"{body} => {head} "
            f"(support={self.support:.3f}, confidence={self.confidence:.3f})"
        )
