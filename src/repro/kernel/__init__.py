"""The kernel of the tightly-coupled mining system (Section 3).

Components, in process-flow order (Figure 3a):

1. :mod:`repro.kernel.translator` — interprets the MINE RULE statement,
   checks it against the data dictionary, classifies it and produces
   the SQL translation programs plus core/postprocessor directives;
2. :mod:`repro.kernel.preprocessor` — runs the programs on the SQL
   server, producing the encoded tables (Figure 4);
3. :mod:`repro.kernel.core` — the non-SQL core operator, with the
   *simple* and *general* variants of Section 4.3;
4. :mod:`repro.kernel.postprocessor` — decodes the encoded rules into
   the user-readable output relations (Section 4.4).
"""

from repro.kernel.names import Workspace
from repro.kernel.program import TranslationProgram, TranslationQuery
from repro.kernel.translator import Translator
from repro.kernel.preprocessor import Preprocessor
from repro.kernel.postprocessor import Postprocessor

__all__ = [
    "Postprocessor",
    "Preprocessor",
    "TranslationProgram",
    "TranslationQuery",
    "Translator",
    "Workspace",
]
