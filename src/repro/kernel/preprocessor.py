"""The Preprocessor (Section 4.2).

"The preprocessor retrieves source data, evaluates the mining,
grouping and cluster conditions of the mining statement, and encodes
data that will appear in rules; it produces a set of Encoded Tables,
stored again into the DBMS."

It is a thin executor of the translator's SQL programs: all relational
work happens inside the SQL server.  The only host-language glue is the
computation of ``:mingroups`` from ``:totg`` after query Q1 — the
integer group-count threshold corresponding to the statement's minimum
support (Appendix A binds it as a host variable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.core.inputs import min_group_count
from repro.kernel.program import TranslationProgram, TranslationQuery
from repro.kernel.trace import ProcessFlow
from repro.sqlengine.engine import Database


@dataclass
class PreprocessStats:
    """Observability for benches: per-query timings, table sizes and
    engine cache activity during this run."""

    query_seconds: Dict[str, float] = field(default_factory=dict)
    table_rows: Dict[str, int] = field(default_factory=dict)
    totg: int = 0
    mingroups: int = 0
    #: SQL-text -> AST cache hits/misses during this run
    statement_cache_hits: int = 0
    statement_cache_misses: int = 0
    #: physical-plan cache hits/misses during this run
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.query_seconds.values())


class Preprocessor:
    """Runs the setup and preprocessing programs on the SQL server."""

    def __init__(self, database: Database):
        self._db = database

    def run(
        self,
        program: TranslationProgram,
        flow: Optional[ProcessFlow] = None,
    ) -> PreprocessStats:
        """Execute the translation program's setup + preprocessing
        queries in order; returns execution statistics."""
        stats = PreprocessStats()
        before = self._db.cache_stats.snapshot()

        for query in program.setup:
            self._db.execute(query.sql)

        for query in program.preprocessing:
            # Prepared execution: repeated runs of the same translation
            # program hit the engine's statement and plan caches.
            prepared = self._db.prepare(query.sql)
            started = time.perf_counter()
            prepared.execute()
            elapsed = time.perf_counter() - started
            stats.query_seconds[query.label] = (
                stats.query_seconds.get(query.label, 0.0) + elapsed
            )
            if flow is not None:
                flow.event("preprocessor", f"ran {query.label}", query.purpose)
            if query.label == "Q1":
                self._bind_mingroups(program, stats, flow)

        self._collect_table_sizes(program, stats)
        after = self._db.cache_stats
        stats.statement_cache_hits = after.statement_hits - before.statement_hits
        stats.statement_cache_misses = (
            after.statement_misses - before.statement_misses
        )
        stats.plan_cache_hits = after.plan_hits - before.plan_hits
        stats.plan_cache_misses = after.plan_misses - before.plan_misses
        return stats

    # ------------------------------------------------------------------

    def _bind_mingroups(
        self,
        program: TranslationProgram,
        stats: PreprocessStats,
        flow: Optional[ProcessFlow],
    ) -> None:
        totg = int(self._db.variables["totg"])
        mingroups = min_group_count(program.statement.min_support, totg)
        self._db.variables["mingroups"] = mingroups
        stats.totg = totg
        stats.mingroups = mingroups
        if flow is not None:
            flow.event(
                "preprocessor",
                "bound host variables",
                f":totg={totg}, :mingroups={mingroups}",
            )

    def _collect_table_sizes(
        self, program: TranslationProgram, stats: PreprocessStats
    ) -> None:
        for table in program.workspace.all_tables():
            if self._db.catalog.has_table(table):
                stats.table_rows[table] = len(self._db.catalog.get_table(table))
