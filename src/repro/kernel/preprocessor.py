"""The Preprocessor (Section 4.2).

"The preprocessor retrieves source data, evaluates the mining,
grouping and cluster conditions of the mining statement, and encodes
data that will appear in rules; it produces a set of Encoded Tables,
stored again into the DBMS."

It is a thin executor of the translator's SQL programs: all relational
work happens inside the SQL server.  The only host-language glue is the
computation of ``:mingroups`` from ``:totg`` after query Q1 — the
integer group-count threshold corresponding to the statement's minimum
support (Appendix A binds it as a host variable).

Resilience: each setup/preprocessing query is one retryable stage.  A
fault-injection check (site ``preprocessor.<label>``) runs at query
entry, a :class:`~repro.faults.RetryPolicy` re-attempts injected
failures with capped backoff, and a
:class:`~repro.kernel.program.StageCheckpoint` records every completed
query (plus the host variables and encoded-table snapshot) so a
resumed run skips the queries whose output tables already exist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import faults
from repro.faults import RetryPolicy
from repro.kernel.core.inputs import min_group_count
from repro.kernel.program import (
    StageCheckpoint,
    TranslationProgram,
    TranslationQuery,
)
from repro.kernel.trace import ProcessFlow
from repro.sqlengine.columnar import validate_storage
from repro.sqlengine.engine import Database


@dataclass
class PreprocessStats:
    """Observability for benches: per-query timings, table sizes and
    engine cache activity during this run."""

    query_seconds: Dict[str, float] = field(default_factory=dict)
    table_rows: Dict[str, int] = field(default_factory=dict)
    totg: int = 0
    mingroups: int = 0
    #: SQL-text -> AST cache hits/misses during this run
    statement_cache_hits: int = 0
    statement_cache_misses: int = 0
    #: physical-plan cache hits/misses during this run
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: queries skipped because a resume checkpoint marked them complete
    queries_skipped: int = 0
    #: query re-attempts taken by the retry policy
    retries: int = 0
    #: EXPLAIN ANALYZE node stats per query label (captured only when
    #: the database tracer was created with ``analyze=True``)
    analyzed: Dict[str, list] = field(default_factory=dict)
    #: the annotated plan text behind each :attr:`analyzed` entry
    analyzed_text: Dict[str, str] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.query_seconds.values())


class Preprocessor:
    """Runs the setup and preprocessing programs on the SQL server.

    ``storage`` picks the physical layout of the encoded tables the
    translation program creates (default ``"columnar"``: the
    string-heavy encoded tables are exactly the dictionary-encoding
    shape, and the vectorized executor runs Q0..Q11 batch-at-a-time
    over them).  ``"row"`` restores the tuple heap layout — the two
    are bit-identical on every golden dump.
    """

    def __init__(self, database: Database, storage: str = "columnar"):
        self._db = database
        self._storage = validate_storage(storage)

    def run(
        self,
        program: TranslationProgram,
        flow: Optional[ProcessFlow] = None,
        checkpoint: Optional[StageCheckpoint] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> PreprocessStats:
        """Execute the translation program's setup + preprocessing
        queries in order; returns execution statistics.

        With a *checkpoint*, completed queries are skipped (their host
        variables restored from the checkpoint) and each newly
        completed query is recorded; with a *policy*, injected faults
        are retried per query.
        """
        stats = PreprocessStats()
        policy = policy if policy is not None else RetryPolicy.single()
        before = self._db.cache_stats.snapshot()

        # Register the workspace tables' storage layout before any
        # CREATE/CTAS runs them into existence; setdefault keeps an
        # explicit per-table hint (tests, ablations) authoritative.
        if self._storage != "row":
            hints = self._db.storage_hints
            for table in program.workspace.all_tables():
                hints.setdefault(table.lower(), self._storage)

        completed = checkpoint.completed_queries if checkpoint else set()
        if checkpoint is not None and checkpoint.host_variables:
            self._db.variables.update(checkpoint.host_variables)

        setup_count = len(program.setup)
        for index, (key, query) in enumerate(program.query_keys()):
            quiet = index < setup_count  # setup stays out of the trace
            if key in completed:
                stats.queries_skipped += 1
                if flow is not None and not quiet:
                    flow.event(
                        "preprocessor",
                        f"skipped {query.label} (resume)",
                        query.purpose,
                    )
                continue
            self._run_query(key, query, program, stats, flow, checkpoint,
                            policy, quiet)

        self._collect_table_sizes(program, stats)
        if stats.totg == 0 and "totg" in self._db.variables:
            # All of Q1/Q3 were skipped on resume: report the restored
            # host variables instead of zeros.
            stats.totg = int(self._db.variables["totg"])
            stats.mingroups = int(self._db.variables.get("mingroups", 0))
        after = self._db.cache_stats
        stats.statement_cache_hits = after.statement_hits - before.statement_hits
        stats.statement_cache_misses = (
            after.statement_misses - before.statement_misses
        )
        stats.plan_cache_hits = after.plan_hits - before.plan_hits
        stats.plan_cache_misses = after.plan_misses - before.plan_misses
        return stats

    # ------------------------------------------------------------------

    def _run_query(
        self,
        key: str,
        query: TranslationQuery,
        program: TranslationProgram,
        stats: PreprocessStats,
        flow: Optional[ProcessFlow],
        checkpoint: Optional[StageCheckpoint],
        policy: RetryPolicy,
        quiet: bool = False,
    ) -> None:
        def attempt() -> None:
            tracer = self._db.tracer
            with tracer.span(
                f"preprocessor.{query.label}",
                category="preprocessor",
                purpose=query.purpose,
            ) as span:
                # The fault site fires at query entry — before the
                # engine touches any state — so a retry re-runs the
                # query exactly once against unchanged tables.
                faults.check(f"preprocessor.{query.label}")
                if tracer.analyze:
                    # EXPLAIN ANALYZE capture: the query still executes
                    # exactly once; its per-operator stats ride along.
                    analysis = self._db.analyze(query.sql)
                    stats.analyzed[query.label] = analysis.nodes
                    stats.analyzed_text[query.label] = analysis.text
                    span.annotate(rows=analysis.rowcount, plan=analysis.text)
                else:
                    # Prepared execution: repeated runs of the same
                    # translation program hit the engine's statement
                    # and plan caches.
                    self._db.prepare(query.sql).execute()

        def on_retry(stage: str, attempt_no: int, exc: Exception,
                     delay: float) -> None:
            stats.retries += 1
            if flow is not None:
                flow.bump("retries")
                flow.event(
                    "preprocessor",
                    "retry",
                    f"{stage} attempt {attempt_no} failed ({exc}); "
                    f"backing off {delay * 1000:.1f} ms",
                )

        started = time.perf_counter()
        policy.execute(attempt, stage=f"preprocessor.{query.label}",
                       on_retry=on_retry)
        elapsed = time.perf_counter() - started
        if not quiet:
            stats.query_seconds[query.label] = (
                stats.query_seconds.get(query.label, 0.0) + elapsed
            )
            metrics = self._db.metrics
            if metrics.enabled:
                metrics.histogram(
                    "repro_preprocess_stage_seconds",
                    "Wall seconds per preprocessing query (Q0..Q11)",
                    ("stage",),
                ).observe(elapsed, stage=query.label)
            slowlog = self._db.slowlog
            if slowlog is not None:
                slowlog.record(
                    f"preprocessor.{query.label}", elapsed,
                    detail=query.purpose,
                )
            if flow is not None:
                flow.event("preprocessor", f"ran {query.label}", query.purpose)
        if query.label == "Q1":
            self._bind_mingroups(program, stats, flow)
        if checkpoint is not None:
            checkpoint.record_query(key, self._db, program.workspace)

    def _bind_mingroups(
        self,
        program: TranslationProgram,
        stats: PreprocessStats,
        flow: Optional[ProcessFlow],
    ) -> None:
        totg = int(self._db.variables["totg"])
        mingroups = min_group_count(program.statement.min_support, totg)
        self._db.variables["mingroups"] = mingroups
        stats.totg = totg
        stats.mingroups = mingroups
        metrics = self._db.metrics
        if metrics.enabled:
            metrics.gauge(
                "repro_preprocess_totg", "Total group count (:totg)"
            ).set(totg)
            metrics.gauge(
                "repro_preprocess_mingroups",
                "Minimum group-count threshold (:mingroups)",
            ).set(mingroups)
        if flow is not None:
            flow.event(
                "preprocessor",
                "bound host variables",
                f":totg={totg}, :mingroups={mingroups}",
            )

    def _collect_table_sizes(
        self, program: TranslationProgram, stats: PreprocessStats
    ) -> None:
        metrics = self._db.metrics
        table_gauge = (
            metrics.gauge(
                "repro_encoded_table_rows",
                "Rows in the encoded tables after preprocessing",
                ("table",),
            )
            if metrics.enabled
            else None
        )
        prefix = f"{program.workspace.prefix}_"
        for table in program.workspace.all_tables():
            if self._db.catalog.has_table(table):
                rows = len(self._db.catalog.get_table(table))
                stats.table_rows[table] = rows
                if table_gauge is not None:
                    # strip the per-run workspace prefix (MR<n>_) so the
                    # label set stays stable across executions
                    label = (
                        table[len(prefix):]
                        if table.startswith(prefix)
                        else table
                    )
                    table_gauge.set(rows, table=label)
