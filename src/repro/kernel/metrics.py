"""Rule-quality measures and core-operator observability.

The MINE RULE operator reports support and confidence; interestingness
research contemporary with the paper added *lift* (interest),
*leverage* (Piatetsky-Shapiro) and *conviction* (Brin et al., SIGMOD
1997).  Because the tightly-coupled architecture keeps the encoded
tables in the DBMS, these measures can be computed **after** mining
from ``CodedSource`` alone — no rescan of the source data — which is
exactly the kind of follow-up analysis the decoupled architecture
cannot do.  This module is a documented extension (DESIGN.md §7).

Group-counting conventions match the core operator: a group counts for
an itemset iff all its items co-occur within one (body- or head-side)
cluster.

:class:`CoreStats` collects what the core operator observed during one
run — lattice set sizes, join pairs examined, bitmap universe sizes
and popcount calls — so the process trace and the text report can
surface them instead of leaving them operator-local.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.kernel.core.inputs import CoreInputLoader
from repro.kernel.core.rules import CONFIDENCE_EPSILON, EncodedRule
from repro.kernel.program import TranslationProgram
from repro.sqlengine.engine import Database


@dataclass
class CoreStats:
    """Observability counters of one core-operator run.

    ``variant`` is ``"simple"`` or ``"general"``; ``representation``
    is the physical support-set layout (``"bitset"``/``"set"``);
    ``algorithm`` names the pool member (simple variant only).
    ``lattice_sizes``/``join_pairs_examined`` mirror the general
    operator's counters; ``universe_sizes``/``popcount_calls``/
    ``intersections`` come from the bitmap kernel.
    """

    variant: str = "simple"
    representation: str = "bitset"
    algorithm: Optional[str] = None
    lattice_sizes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    join_pairs_examined: int = 0
    universe_sizes: Dict[str, int] = field(default_factory=dict)
    popcount_calls: int = 0
    intersections: int = 0
    passes: int = 0
    candidates_generated: int = 0
    bitset_density: float = 0.0
    #: sharded execution (repro.parallel): gid ranges and pool width
    #: of the run (0 when the core ran serially)
    shards: int = 0
    workers: int = 0

    @classmethod
    def from_general(cls, operator) -> "CoreStats":
        """Collect from a :class:`GeneralCoreOperator` after a run."""
        stats = operator.bitmap_stats
        return cls(
            variant="general",
            representation=operator.representation,
            lattice_sizes=dict(operator.lattice_sizes),
            join_pairs_examined=operator.join_pairs_examined,
            universe_sizes=dict(stats.universe_sizes),
            popcount_calls=stats.popcount_calls,
            intersections=stats.intersections,
            passes=stats.passes or len(operator.lattice_sizes),
            candidates_generated=stats.candidates,
            bitset_density=stats.density(),
        )

    @classmethod
    def from_simple(cls, algorithm) -> "CoreStats":
        """Collect from a pool algorithm after a simple-core run."""
        stats = getattr(algorithm, "stats", None)
        return cls(
            variant="simple",
            representation=getattr(algorithm, "representation", "bitset"),
            algorithm=algorithm.name,
            universe_sizes=dict(stats.universe_sizes) if stats else {},
            popcount_calls=stats.popcount_calls if stats else 0,
            intersections=stats.intersections if stats else 0,
            passes=stats.passes if stats else 0,
            candidates_generated=stats.candidates if stats else 0,
            bitset_density=stats.density() if stats else 0.0,
        )

    def counter_items(self) -> List[Tuple[str, int]]:
        """The canonical (name, value) counters of a core run — one
        list shared by the text report, the tracer gauges and the
        metrics registry, so the three surfaces can never drift."""
        return [
            ("core.popcounts", self.popcount_calls),
            ("core.intersections", self.intersections),
            ("core.join_pairs_examined", self.join_pairs_examined),
            ("core.passes", self.passes),
            ("core.candidates", self.candidates_generated),
        ]

    def publish(self, tracer, metrics, run: Optional[int] = None) -> None:
        """Publish this run's core observations.

        An enabled *tracer* gets gauges (run-labeled when *run* is
        given); *metrics* gets the cross-run view: ``repro_core_*``
        counters, per-universe slot gauges and the density/variant
        gauges a serving process exposes on ``/metrics``.
        """
        if tracer is not None and tracer.enabled:
            labels = {"run": run} if run is not None else {}
            tracer.gauge("core.variant", self.variant, **labels)
            tracer.gauge("core.representation", self.representation, **labels)
            if self.algorithm:
                tracer.gauge("core.algorithm", self.algorithm, **labels)
            for name, value in self.counter_items():
                tracer.gauge(name, value, **labels)
            tracer.gauge(
                "core.bitset_density", round(self.bitset_density, 6), **labels
            )
        if metrics is None or not metrics.enabled:
            return
        for name, value in self.counter_items():
            if value:
                metrics.counter(
                    f"repro_{name.replace('.', '_')}_total",
                    f"Core-operator total of {name!r} across runs",
                ).inc(value)
        for label, size in sorted(self.universe_sizes.items()):
            metrics.gauge(
                "repro_core_universe_slots",
                "Slot-universe size of the last core run",
                ("universe",),
            ).set(size, universe=label)
        metrics.gauge(
            "repro_core_bitset_density",
            "Fraction of set bits in the sampled bitmaps (last run)",
        ).set(round(self.bitset_density, 6))
        if self.shards:
            metrics.gauge(
                "repro_core_shards",
                "Shard count of the last sharded core run",
            ).set(self.shards)
            metrics.gauge(
                "repro_core_workers",
                "Worker-pool width of the last sharded core run",
            ).set(self.workers)
        metrics.counter(
            "repro_core_runs_total",
            "Core-operator runs by variant and representation",
            ("variant", "representation"),
        ).inc(variant=self.variant, representation=self.representation)

    def describe(self) -> str:
        """One-line summary for the process trace."""
        parts = [f"{self.variant} core, {self.representation} sets"]
        if self.algorithm:
            parts.append(f"algorithm {self.algorithm}")
        if self.shards:
            parts.append(f"{self.shards} shards x {self.workers} workers")
        if self.lattice_sizes:
            total = sum(self.lattice_sizes.values())
            parts.append(
                f"{len(self.lattice_sizes)} lattice sets / {total} rules"
            )
        if self.join_pairs_examined:
            parts.append(f"{self.join_pairs_examined} join pairs")
        if self.universe_sizes:
            sizes = ", ".join(
                f"{label}={size}"
                for label, size in sorted(self.universe_sizes.items())
            )
            parts.append(f"universes {sizes}")
        if self.popcount_calls:
            parts.append(f"{self.popcount_calls} popcounts")
        return "; ".join(parts)


@dataclass
class ResilienceStats:
    """Fault/retry/resume counters of one pipeline run.

    Filled by ``MiningSystem.run``: injected faults come from the
    active :class:`~repro.faults.FaultSchedule` delta, retries from the
    :class:`~repro.faults.RetryPolicy` callbacks, resumed stages from
    the checkpoint skip path, and ``degraded`` lists every graceful
    fallback taken (compiled expressions -> interpreter, bitset ->
    set representation).
    """

    faults_injected: int = 0
    latencies_injected: int = 0
    retries: int = 0
    stages_resumed: int = 0
    degraded: List[str] = field(default_factory=list)

    @property
    def degradations(self) -> int:
        return len(self.degraded)

    def any(self) -> bool:
        """True when anything noteworthy happened (report gating)."""
        return bool(
            self.faults_injected
            or self.latencies_injected
            or self.retries
            or self.stages_resumed
            or self.degraded
        )

    def describe(self) -> str:
        """One-line summary for the process trace."""
        parts = [
            f"faults {self.faults_injected}",
            f"latency faults {self.latencies_injected}",
            f"retries {self.retries}",
            f"stages resumed {self.stages_resumed}",
        ]
        if self.degraded:
            parts.append(f"degraded: {', '.join(self.degraded)}")
        return "; ".join(parts)


@dataclass(frozen=True)
class RuleMetrics:
    """Extended measures for one encoded rule.

    ``conviction`` is ``None`` for confidence-1 rules (it diverges).
    """

    rule: EncodedRule
    head_count: int
    lift: float
    leverage: float
    conviction: Optional[float]


def compute_metrics(
    database: Database,
    program: TranslationProgram,
    rules: Sequence[EncodedRule],
) -> List[RuleMetrics]:
    """Compute lift/leverage/conviction for *rules* from the encoded
    tables of *program* (which must still be in the database)."""
    loader = CoreInputLoader(database, program.core)
    data = loader.load_general()
    totg = data.totg
    if totg == 0:
        return []

    head_occurrences = _occurrence_index(data.head_items)
    cache: Dict[Tuple[int, ...], int] = {}

    out: List[RuleMetrics] = []
    for rule in rules:
        head_count = _cooccurrence_count(
            tuple(sorted(rule.head)), head_occurrences, cache
        )
        head_support = head_count / totg
        body_support = rule.body_count / totg
        lift = (
            rule.confidence / head_support if head_support > 0 else math.inf
        )
        leverage = rule.support - body_support * head_support
        if rule.confidence >= 1.0 - CONFIDENCE_EPSILON:
            conviction: Optional[float] = None
        else:
            conviction = (1.0 - head_support) / (1.0 - rule.confidence)
        out.append(
            RuleMetrics(
                rule=rule,
                head_count=head_count,
                lift=lift,
                leverage=leverage,
                conviction=conviction,
            )
        )
    return out


def store_metrics(
    database: Database,
    program: TranslationProgram,
    metrics: Sequence[RuleMetrics],
) -> str:
    """Persist the measures as ``<out>_Metrics`` (BodyId/HeadId keyed,
    joinable with the main output table); returns the table name."""
    out = program.statement.output_table
    # rebuild the BodyId/HeadId assignment the postprocessor used:
    # it numbers bodies/heads in first-appearance order of the rules
    body_ids: Dict[FrozenSet[int], int] = {}
    head_ids: Dict[FrozenSet[int], int] = {}
    rows = []
    for m in metrics:
        body_id = body_ids.setdefault(m.rule.body, len(body_ids) + 1)
        head_id = head_ids.setdefault(m.rule.head, len(head_ids) + 1)
        rows.append(
            (
                body_id,
                head_id,
                m.lift,
                m.leverage,
                m.conviction,
            )
        )
    database.create_table_from_rows(
        f"{out}_Metrics",
        ["BodyId", "HeadId", "LIFT", "LEVERAGE", "CONVICTION"],
        rows,
        replace=True,
    )
    return f"{out}_Metrics"


# ---------------------------------------------------------------------------


def _occurrence_index(
    items_per_cluster: Dict[int, Dict[int, Set[int]]],
) -> Dict[int, Set[Tuple[int, int]]]:
    index: Dict[int, Set[Tuple[int, int]]] = {}
    for gid, clusters in items_per_cluster.items():
        for cid, items in clusters.items():
            for item in items:
                index.setdefault(item, set()).add((gid, cid))
    return index


def _cooccurrence_count(
    itemset: Tuple[int, ...],
    occurrences: Dict[int, Set[Tuple[int, int]]],
    cache: Dict[Tuple[int, ...], int],
) -> int:
    cached = cache.get(itemset)
    if cached is not None:
        return cached
    sets = [occurrences.get(item, set()) for item in itemset]
    if not sets or any(not s for s in sets):
        cache[itemset] = 0
        return 0
    sets.sort(key=len)
    shared = set(sets[0])
    for other in sets[1:]:
        shared &= other
        if not shared:
            break
    count = len({gid for gid, _ in shared})
    cache[itemset] = count
    return count
