"""``python -m repro`` starts the MINE RULE shell."""

import sys

from repro.cli import main

sys.exit(main())
