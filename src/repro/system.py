"""The mining system facade.

:class:`MiningSystem` wires the kernel components of Figure 3a into the
process flow the paper describes: the user submits a MINE RULE
statement; the translator validates/classifies it and emits SQL
programs; the preprocessor runs them on the SQL server; the core
operator mines encoded rules; the postprocessor stores and decodes the
output relations.  The result object carries everything an application
(or the paper's AMORE user support) needs: decoded rules, the output
table names, the directive vector, per-phase timings and the process
trace.

It also implements the preprocessing-reuse optimisation noted in
Section 3 ("the same preprocessing could be in common to the execution
of several data mining queries, thus saving its cost"): executions
whose FROM/GROUP/CLUSTER/encoding parts coincide share their encoded
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.algorithms import FrequentItemsetMiner, get_algorithm
from repro.algorithms.bitset import validate_representation
from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.metrics import CoreStats
from repro.kernel.core.inputs import CoreInputLoader
from repro.kernel.core.rules import EncodedRule
from repro.kernel.core.simple import SimpleCoreOperator
from repro.kernel.names import Workspace
from repro.kernel.postprocessor import DecodedRule, Postprocessor
from repro.kernel.preprocessor import Preprocessor, PreprocessStats
from repro.kernel.program import TranslationProgram
from repro.kernel.trace import ProcessFlow
from repro.kernel.translator import Translator
from repro.minerule.statements import MineRuleStatement
from repro.sqlengine.engine import Database
from repro.sqlengine.render import render_expr


@dataclass
class MiningResult:
    """Outcome of one MINE RULE execution."""

    statement: MineRuleStatement
    program: TranslationProgram
    encoded_rules: List[EncodedRule]
    rules: List[DecodedRule]
    preprocess_stats: Optional[PreprocessStats]
    flow: ProcessFlow
    #: True when encoded tables were reused from a previous execution
    preprocessing_reused: bool = False
    #: core-operator observability (lattice sizes, bitmap counters)
    core_stats: Optional[CoreStats] = None

    @property
    def directives(self):
        return self.program.directives

    @property
    def output_table(self) -> str:
        return self.statement.output_table

    @property
    def timings(self) -> Dict[str, float]:
        return self.flow.timings

    def __len__(self) -> int:
        return len(self.rules)

    def rule_set(self) -> set:
        """{(body frozenset, head frozenset, support, confidence)} with
        ratios rounded for robust comparisons."""
        return {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in self.rules
        }


class MiningSystem:
    """Tightly-coupled data mining on top of the SQL engine."""

    def __init__(
        self,
        database: Optional[Database] = None,
        algorithm: Union[str, FrequentItemsetMiner] = "apriori",
        reuse_preprocessing: bool = True,
        representation: str = "bitset",
    ):
        self.db = database if database is not None else Database()
        self.representation = validate_representation(representation)
        if isinstance(algorithm, str):
            algorithm = get_algorithm(algorithm)
        if (
            self.representation != "bitset"
            and hasattr(algorithm, "representation")
        ):
            # gid-list pool members honour the switch; vertical-only
            # members (eclat) and horizontal ones (dhp, exhaustive)
            # have no set/bitset distinction to toggle
            algorithm.representation = self.representation
        self.algorithm = algorithm
        self.reuse_preprocessing = reuse_preprocessing
        self._translator = Translator(self.db)
        self._preprocessor = Preprocessor(self.db)
        self._postprocessor = Postprocessor(self.db)
        self._executions = 0
        #: preprocessing signature -> (workspace, totg, mingroups)
        self._preprocess_cache: Dict[tuple, Tuple[Workspace, int, int]] = {}

    # ------------------------------------------------------------------

    def execute(self, statement_text: str) -> MiningResult:
        """Run one MINE RULE statement end to end."""
        flow = ProcessFlow()
        self._executions += 1

        # -- translator -------------------------------------------------
        flow.start("translator")
        flow.event("translator", "received statement")
        signature_workspace = Workspace(f"MR{self._executions}")
        program = self._translator.translate(
            statement_text, signature_workspace
        )
        flow.event(
            "translator",
            "validated and classified",
            f"directives {program.directives}",
        )
        flow.stop()

        # -- preprocessor ------------------------------------------------
        signature = self._preprocess_signature(program)
        cached = (
            self._preprocess_cache.get(signature)
            if self.reuse_preprocessing
            else None
        )
        stats: Optional[PreprocessStats] = None
        reused = False
        flow.start("preprocessor")
        if cached is not None:
            workspace, totg, mingroups = cached
            # Re-target the program onto the cached workspace.
            program = self._translator.translate(statement_text, workspace)
            self.db.variables["totg"] = totg
            self.db.variables["mingroups"] = mingroups
            reused = True
            flow.event(
                "preprocessor",
                "reused encoded tables",
                f"workspace {workspace.prefix} (Section 3 optimisation)",
            )
            # The output tables of *this* statement must still be fresh.
            self._drop_output_tables(program)
        else:
            stats = self._preprocessor.run(program, flow)
            if self.reuse_preprocessing:
                self._preprocess_cache[signature] = (
                    program.workspace,
                    stats.totg,
                    stats.mingroups,
                )
        flow.stop()

        # -- core operator -------------------------------------------------
        flow.start("core")
        loader = CoreInputLoader(self.db, program.core)
        if program.core.simple:
            data = loader.load_simple()
            operator = SimpleCoreOperator(self.algorithm)
            flow.event(
                "core",
                "simple core processing",
                f"algorithm {self.algorithm.name}, "
                f"{len(data.groups)} encoded groups",
            )
            encoded_rules = operator.run(data, program.core)
            core_stats = CoreStats.from_simple(self.algorithm)
        else:
            general_data = loader.load_general()
            general = GeneralCoreOperator(
                representation=self.representation
            )
            flow.event(
                "core",
                "general core processing",
                "elementary rules from InputRules"
                if general_data.elementary is not None
                else "elementary rules derived from CodedSource",
            )
            encoded_rules = general.run(general_data, program.core)
            core_stats = CoreStats.from_general(general)
        flow.event("core", "extracted rules", f"{len(encoded_rules)} rules")
        flow.event("core", "observability", core_stats.describe())
        flow.stop()

        # -- postprocessor -----------------------------------------------
        flow.start("postprocessor")
        self._postprocessor.store_encoded_rules(program, encoded_rules)
        self._postprocessor.decode(program)
        decoded = self._postprocessor.decoded_rules(program, encoded_rules)
        flow.event(
            "postprocessor",
            "stored output relations",
            f"{program.statement.output_table}, "
            f"{program.statement.output_table}_Bodies, "
            f"{program.statement.output_table}_Heads",
        )
        flow.stop()

        return MiningResult(
            statement=program.statement,
            program=program,
            encoded_rules=encoded_rules,
            rules=decoded,
            preprocess_stats=stats,
            flow=flow,
            preprocessing_reused=reused,
            core_stats=core_stats,
        )

    # ------------------------------------------------------------------

    def compute_metrics(self, result: MiningResult, store: bool = True):
        """Extended rule-quality measures (lift, leverage, conviction)
        for a just-executed result; optionally persisted as
        ``<out>_Metrics``.  Requires the result's encoded tables to
        still be in the database (i.e. call right after execute)."""
        from repro.kernel.metrics import compute_metrics, store_metrics

        metrics = compute_metrics(self.db, result.program,
                                  result.encoded_rules)
        if store:
            store_metrics(self.db, result.program, metrics)
        return metrics

    def invalidate_preprocessing(self, drop_tables: bool = False) -> None:
        """Drop the preprocessing-reuse cache (call after updating the
        source tables).  With ``drop_tables`` the cached encoded tables
        are also removed from the database, bounding memory across
        long sessions."""
        if drop_tables:
            for workspace, _, _ in self._preprocess_cache.values():
                for view in workspace.all_views():
                    self.db.catalog.drop_view(view, if_exists=True)
                for table in workspace.all_tables():
                    self.db.catalog.drop_table(table, if_exists=True)
                for sequence in workspace.all_sequences():
                    self.db.catalog.drop_sequence(sequence, if_exists=True)
        self._preprocess_cache.clear()

    def _preprocess_signature(self, program: TranslationProgram) -> tuple:
        """Statements share encoded tables iff this signature matches:
        all parts that affect queries Q0..Q11 (including the support
        threshold, which parameterizes the Bset/Hset encoding)."""
        statement = program.statement

        def render(expr) -> str:
            return "" if expr is None else render_expr(expr)

        return (
            tuple((t.name.lower(), t.alias) for t in statement.from_list),
            render(statement.source_condition),
            tuple(a.lower() for a in statement.group_attributes),
            render(statement.group_condition),
            tuple(a.lower() for a in statement.cluster_attributes),
            render(statement.cluster_condition),
            tuple(a.lower() for a in statement.body.attributes),
            tuple(a.lower() for a in statement.head.attributes),
            render(statement.mining_condition),
            statement.min_support,
            program.directives.as_tuple(),
        )

    def _drop_output_tables(self, program: TranslationProgram) -> None:
        out = program.statement.output_table
        names = program.workspace
        for table in (
            out,
            f"{out}_Bodies",
            f"{out}_Heads",
            f"{out}_Display",
            names.output_bodies,
            names.output_heads,
        ):
            self.db.catalog.drop_table(table, if_exists=True)
