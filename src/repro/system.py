"""The mining system facade.

:class:`MiningSystem` wires the kernel components of Figure 3a into the
process flow the paper describes: the user submits a MINE RULE
statement; the translator validates/classifies it and emits SQL
programs; the preprocessor runs them on the SQL server; the core
operator mines encoded rules; the postprocessor stores and decodes the
output relations.  The result object carries everything an application
(or the paper's AMORE user support) needs: decoded rules, the output
table names, the directive vector, per-phase timings and the process
trace.

It also implements the preprocessing-reuse optimisation noted in
Section 3 ("the same preprocessing could be in common to the execution
of several data mining queries, thus saving its cost"): executions
whose FROM/GROUP/CLUSTER/encoding parts coincide share their encoded
tables.

Resilience (:mod:`repro.faults`): :meth:`MiningSystem.run` executes the
same pipeline with per-stage retry (:class:`~repro.faults.RetryPolicy`,
capped exponential backoff + wall-clock budget), stage checkpoints
(:class:`~repro.kernel.program.StageCheckpoint`) so ``run(resume=True)``
skips stages a crashed run already completed, and graceful degradation:
a persistently failing bitset core falls back to the ``"set"`` layout
(the compiled-expression fallback lives in the engine's compiler).
Every fault, retry, resumed stage and degradation is surfaced through
:class:`~repro.kernel.metrics.ResilienceStats`, the process-trace
counters and the text report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.algorithms import FrequentItemsetMiner, get_algorithm
from repro.algorithms.bitset import (
    set_packed_min_slots,
    validate_representation,
)
from repro.faults import FaultError, RetryPolicy
from repro.incremental import (
    MiningState,
    RefreshComputation,
    RefreshError,
    RefreshStats,
    SourceMutated,
    encode_for_emission,
    refresh_eligibility,
)
from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.metrics import CoreStats, ResilienceStats
from repro.kernel.core.inputs import CoreInputLoader
from repro.kernel.core.rules import EncodedRule
from repro.kernel.core.simple import SimpleCoreOperator, build_rules
from repro.kernel.names import Workspace
from repro.kernel.postprocessor import DecodedRule, Postprocessor
from repro.kernel.preprocessor import Preprocessor, PreprocessStats
from repro.kernel.program import StageCheckpoint, TranslationProgram
from repro.kernel.trace import ProcessFlow
from repro.kernel.translator import Translator
from repro.minerule.parser import parse_refresh
from repro.minerule.statements import MineRuleStatement
from repro.obs import context as obs_context
from repro.obs import profile as obs_profile
from repro.obs.export import trace_events
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    publish_gauge,
)
from repro.obs.runlog import RunLog, statement_fingerprint
from repro.obs.spans import NULL_TRACER, Tracer
from repro.parallel import ShardedMiner
from repro.sqlengine.columnar import validate_storage
from repro.sqlengine.engine import Database
from repro.sqlengine.render import render_expr


class RunCancelled(Exception):
    """A run's ``cancel`` hook fired at a stage boundary.

    Raised by :meth:`MiningSystem.run` when the caller-supplied cancel
    callable returns True.  Cancellation is cooperative and only
    happens *between* pipeline stages, so the database is always left
    consistent: either a stage completed fully or it never started.
    A cancelled run keeps its crash checkpoint, so a later
    ``run(resume=True)`` of the same statement picks up where it
    stopped.  Cancellation is not a health failure — the jobs layer
    reports it as a distinct terminal state.
    """


@dataclass
class MiningResult:
    """Outcome of one MINE RULE execution."""

    statement: MineRuleStatement
    program: TranslationProgram
    encoded_rules: List[EncodedRule]
    rules: List[DecodedRule]
    preprocess_stats: Optional[PreprocessStats]
    flow: ProcessFlow
    #: True when encoded tables were reused from a previous execution
    preprocessing_reused: bool = False
    #: core-operator observability (lattice sizes, bitmap counters)
    core_stats: Optional[CoreStats] = None
    #: fault/retry/resume counters of this run
    resilience: Optional[ResilienceStats] = None
    #: 1-based execution number within this system (labels the run's
    #: end-of-run gauges so repeated runs don't overwrite each other)
    run_id: int = 0

    @property
    def directives(self):
        return self.program.directives

    @property
    def output_table(self) -> str:
        return self.statement.output_table

    @property
    def timings(self) -> Dict[str, float]:
        return self.flow.timings

    def __len__(self) -> int:
        return len(self.rules)

    def rule_set(self) -> set:
        """{(body frozenset, head frozenset, support, confidence)} with
        ratios rounded for robust comparisons."""
        return {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in self.rules
        }


@dataclass
class _RefreshEntry:
    """Per-output-table refresh bookkeeping: the owning statement, its
    translated program (workspace, postprocessing SQL, directives) and
    the mining state captured by the last refresh."""

    statement_text: str
    program: TranslationProgram
    state: Optional[MiningState] = None


@dataclass
class RefreshResult:
    """Outcome of one ``REFRESH RULES`` execution.

    Mirrors :class:`MiningResult` (rules, program, flow) plus the
    refresh-specific :class:`~repro.incremental.RefreshStats` — mode
    ``"incremental"`` when FUP delta maintenance ran, ``"full"`` when a
    forced full re-mine was executed instead (with ``stats.reason``
    saying why)."""

    statement: MineRuleStatement
    program: TranslationProgram
    encoded_rules: List[EncodedRule]
    rules: List[DecodedRule]
    flow: ProcessFlow
    stats: RefreshStats
    resilience: Optional[ResilienceStats] = None
    run_id: int = 0

    @property
    def directives(self):
        return self.program.directives

    @property
    def output_table(self) -> str:
        return self.statement.output_table

    @property
    def timings(self) -> Dict[str, float]:
        return self.flow.timings

    def __len__(self) -> int:
        return len(self.rules)

    def rule_set(self) -> set:
        """Same robust comparison form as :meth:`MiningResult.rule_set`."""
        return {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in self.rules
        }


class MiningSystem:
    """Tightly-coupled data mining on top of the SQL engine."""

    #: crash checkpoints kept around for ``run(resume=True)``
    _CHECKPOINT_CAP = 16

    def __init__(
        self,
        database: Optional[Database] = None,
        algorithm: Union[str, FrequentItemsetMiner] = "apriori",
        reuse_preprocessing: bool = True,
        representation: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        slowlog: Optional[Any] = None,
        health: Optional[Any] = None,
        runlog: Optional[RunLog] = None,
        workers: int = 1,
        shards: Optional[int] = None,
        shard_start_method: Optional[str] = None,
        storage: Optional[str] = None,
        batch_size: Optional[int] = None,
        memory_budget: Optional[int] = None,
        packed_min_slots: Optional[int] = None,
    ):
        self.db = database if database is not None else Database()
        #: physical layout of the encoded tables the preprocessor
        #: creates (None: "columnar", the PR7 default; "row" restores
        #: the tuple heaps — bit-identical either way)
        self.storage = validate_storage(
            storage if storage is not None else "columnar"
        )
        #: engine executor tuning: vectorized batch width and the
        #: byte budget above which operators spill to disk (None keeps
        #: the engine defaults / unbounded memory)
        if batch_size is not None:
            if batch_size < 1:
                raise ValueError(
                    f"batch_size must be positive, got {batch_size}"
                )
            self.db.options.batch_size = int(batch_size)
        if memory_budget is not None:
            if memory_budget < 1:
                raise ValueError(
                    f"memory_budget must be positive, got {memory_budget}"
                )
            self.db.options.memory_budget = int(memory_budget)
        if packed_min_slots is not None:
            set_packed_min_slots(packed_min_slots)
        #: observability sink for the whole pipeline (spans, counters,
        #: gauges); shared with the SQL engine so statement spans nest
        #: inside the component spans
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.db.tracer = self.tracer
        #: cross-run metrics registry; resolution order: explicit
        #: argument, then an enabled tracer's own registry, then the
        #: shared disabled one
        if metrics is not None:
            self.metrics = metrics
            if self.tracer.enabled:
                # never mutate the shared NULL_TRACER
                self.tracer.metrics = metrics
        elif self.tracer.enabled and self.tracer.metrics.enabled:
            self.metrics = self.tracer.metrics
        else:
            self.metrics = NULL_REGISTRY
        self.db.metrics = self.metrics
        #: slow-query log (:class:`repro.obs.slowlog.SlowQueryLog`);
        #: shared with the engine so per-statement entries land in it
        self.slowlog = slowlog
        self.db.slowlog = slowlog
        #: run-state tracker (:class:`repro.obs.httpd.HealthState`)
        #: behind a monitoring server's ``/healthz``
        self.health = health
        #: run-history journal (:class:`repro.obs.runlog.RunLog`); every
        #: completed run/refresh appends one record (trace ids, stage
        #: timings, resource totals, outcome) that survives restarts
        self.runlog = runlog
        #: None means "pick for me": serial runs keep the default
        #: big-int "bitset" layout, sharded runs (workers > 1) upgrade
        #: to the packed word layout whose construction cost is linear
        #: and whose payloads pickle cheaply.  An explicit value wins
        #: in both modes.
        self._explicit_representation = representation is not None
        self.representation = validate_representation(
            representation if representation is not None else "bitset"
        )
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        #: sharded execution (repro.parallel): process-pool width, gid
        #: range count (None: one per worker) and start method.
        #: workers=1 is exactly the serial path.
        self.workers = int(workers)
        self.shards = shards
        self.shard_start_method = shard_start_method
        if isinstance(algorithm, str):
            algorithm = get_algorithm(algorithm)
        if (
            self.representation != "bitset"
            and hasattr(algorithm, "representation")
        ):
            # gid-list pool members honour the switch; vertical-only
            # members (eclat) and horizontal ones (dhp, exhaustive)
            # have no set/bitset distinction to toggle
            algorithm.representation = self.representation
        self.algorithm = algorithm
        self.reuse_preprocessing = reuse_preprocessing
        #: default retry policy for :meth:`run` (None: single attempt)
        self.retry_policy = retry_policy
        self._translator = Translator(self.db)
        self._preprocessor = Preprocessor(self.db, storage=self.storage)
        self._postprocessor = Postprocessor(self.db)
        self._executions = 0
        #: preprocessing signature -> (workspace, totg, mingroups)
        self._preprocess_cache: Dict[tuple, Tuple[Workspace, int, int]] = {}
        #: normalized statement text -> checkpoint of a crashed run
        self._checkpoints: Dict[str, StageCheckpoint] = {}
        #: lowercased output table -> refresh bookkeeping of the last
        #: successful MINE RULE run producing it (REFRESH RULES target)
        self._refresh_registry: Dict[str, _RefreshEntry] = {}
        #: serializes whole MINE RULE runs: the pipeline mutates shared
        #: system state (_executions, reuse cache, checkpoints, host
        #: variables, algorithm.representation), so concurrent job
        #: workers take this and the engine's write lock for the whole
        #: run — making every run bit-identical to serial execution
        #: while plain SELECT jobs still share the engine's read side
        self._run_lock = threading.RLock()

    # ------------------------------------------------------------------

    def execute(self, statement_text: str) -> MiningResult:
        """Run one MINE RULE statement end to end (no resume/retry)."""
        return self.run(statement_text)

    def run(
        self,
        statement_text: str,
        resume: bool = False,
        retry: Optional[RetryPolicy] = None,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> MiningResult:
        """Run one MINE RULE statement end to end.

        ``retry`` (or the system-wide :attr:`retry_policy`) re-attempts
        stages that fail with an injected :class:`FaultError`, with
        capped exponential backoff.  ``resume=True`` consults the
        checkpoint a previously crashed run of the *same statement
        text* left behind and skips its completed stages — provided the
        checkpoint's recorded encoded tables are still intact; a stale
        checkpoint is discarded and the run starts from scratch.

        ``cancel`` is a zero-argument callable polled at every stage
        boundary; once it returns True the run raises
        :class:`RunCancelled` (a cooperative cancel, so the database
        stays consistent — see the exception's docstring).
        """
        policy = retry if retry is not None else self.retry_policy
        if policy is None:
            policy = RetryPolicy.single()
        tracer = self.tracer
        metrics = self.metrics
        health = self.health
        observed = (
            tracer.enabled
            or metrics.enabled
            or self.slowlog is not None
            or health is not None
            or self.runlog is not None
        )
        if not observed:
            return self._run_pipeline(statement_text, resume, policy, cancel)

        compact = " ".join(statement_text.split())
        if health is not None:
            health.begin()
        status = "error"
        error_text: Optional[str] = None
        result: Optional[MiningResult] = None
        started = time.perf_counter()
        with obs_context.ensure() as ctx:
            cpu_start = obs_profile.cpu_seconds()
            mem_start = obs_profile.memory_sample()
            try:
                if tracer.enabled:
                    with tracer.span(
                        "minerule.run",
                        category="minerule",
                        statement=compact[:120],
                        run=self._executions + 1,
                    ):
                        result = self._run_pipeline(
                            statement_text, resume, policy, cancel
                        )
                else:
                    result = self._run_pipeline(
                        statement_text, resume, policy, cancel
                    )
                ctx.run_id = result.run_id
                status = "ok"
            except RunCancelled as exc:
                # Not a failure: the caller asked the run to stop.  The
                # health endpoint must not flip to 503 over it.
                status = "cancelled"
                error_text = str(exc)
                if health is not None:
                    health.success()
                raise
            except Exception as exc:
                error_text = f"{type(exc).__name__}: {exc}"
                if health is not None:
                    health.failure(exc)
                raise
            finally:
                elapsed = time.perf_counter() - started
                if metrics.enabled:
                    metrics.histogram(
                        "repro_minerule_run_seconds",
                        "End-to-end MINE RULE run latency",
                    ).observe(elapsed)
                    metrics.counter(
                        "repro_minerule_runs_total",
                        "MINE RULE runs by outcome",
                        ("status",),
                    ).inc(status=status)
                if self.slowlog is not None:
                    self.slowlog.record(
                        "minerule.run", elapsed, detail=compact
                    )
                if self.runlog is not None:
                    self._record_run(
                        ctx,
                        kind="mine",
                        statement=compact,
                        status=status,
                        error=error_text,
                        elapsed=elapsed,
                        cpu_seconds=obs_profile.cpu_seconds() - cpu_start,
                        peak_bytes=obs_profile.peak_bytes_since(mem_start),
                        rules=None if result is None else len(result.rules),
                        stages=None if result is None else result.flow.timings,
                    )
        if health is not None:
            health.success()
        self._publish_observations(result)
        return result

    def _record_run(
        self,
        ctx: obs_context.TraceContext,
        kind: str,
        statement: str,
        status: str,
        error: Optional[str],
        elapsed: float,
        cpu_seconds: Optional[float] = None,
        peak_bytes: Optional[int] = None,
        rules: Optional[int] = None,
        stages: Optional[Dict[str, float]] = None,
        **extra: Any,
    ) -> None:
        """Append one completed run/refresh to the run-history journal."""
        record: Dict[str, Any] = {
            "id": ctx.trace_id,
            "kind": kind,
            "trace_id": ctx.trace_id,
            "statement": statement[:200],
            "fingerprint": statement_fingerprint(statement),
            "status": status,
            "seconds": round(elapsed, 6),
        }
        if ctx.job_id is not None:
            record["job_id"] = ctx.job_id
        if ctx.run_id is not None:
            record["run_id"] = ctx.run_id
        if error:
            record["error"] = error
        if cpu_seconds is not None:
            record["cpu_seconds"] = round(cpu_seconds, 6)
        if peak_bytes is not None and peak_bytes > 0:
            record["peak_bytes"] = int(peak_bytes)
        if rules is not None:
            record["rules"] = rules
        if stages:
            record["stages"] = {
                name: round(seconds, 6) for name, seconds in stages.items()
            }
        record.update(extra)
        if self.tracer.enabled:
            # persist the run's own slice of the trace so GET
            # /runs/<id>/trace works long after the tracer moved on
            record["trace"] = trace_events(
                self.tracer, trace_id=ctx.trace_id
            )
        self.runlog.record(**record)

    def _run_pipeline(
        self,
        statement_text: str,
        resume: bool,
        policy: RetryPolicy,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> MiningResult:
        # One run at a time: the run lock serializes concurrent job
        # workers, and the engine's write lock keeps every SQL job
        # (even read-only scans) out of the pipeline's way while the
        # encoded tables are in flux.
        with self._run_lock, self.db.rwlock.write_locked():
            return self._run_pipeline_locked(
                statement_text, resume, policy, cancel
            )

    @staticmethod
    def _check_cancel(cancel: Optional[Callable[[], bool]],
                      stage: str) -> None:
        if cancel is not None and cancel():
            raise RunCancelled(f"run cancelled before {stage}")

    def _run_pipeline_locked(
        self,
        statement_text: str,
        resume: bool,
        policy: RetryPolicy,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> MiningResult:
        self._check_cancel(cancel, "translator")
        flow = ProcessFlow(tracer=self.tracer)
        resilience = ResilienceStats()
        schedule = faults.active()
        fault_mark = schedule.snapshot() if schedule is not None else None
        self._executions += 1

        key = " ".join(statement_text.split())
        checkpoint = self._checkpoints.get(key) if resume else None
        if checkpoint is not None and not self._checkpoint_valid(checkpoint):
            flow.event(
                "translator",
                "checkpoint discarded",
                "recorded encoded tables are gone or changed; "
                "restarting from scratch",
            )
            # The restarted run mints a fresh workspace prefix, so the
            # discarded checkpoint's partial tables would never be swept
            # by _drop_partial_tables — orphan-sweep its prefix here
            # (and evict reuse-cache entries pointing at it, which
            # would otherwise hand out just-dropped encoded tables).
            self._sweep_workspace(Workspace(checkpoint.workspace_prefix))
            flow.event(
                "translator",
                "swept orphaned workspace",
                checkpoint.workspace_prefix,
            )
            self._checkpoints.pop(key, None)
            checkpoint = None
        resumed = checkpoint is not None

        def on_retry(stage: str, attempt: int, exc: Exception,
                     delay: float) -> None:
            resilience.retries += 1
            flow.bump("retries")
            flow.event(
                stage.split(".", 1)[0],
                "retry",
                f"{stage} attempt {attempt} failed ({exc}); "
                f"backing off {delay * 1000:.1f} ms",
            )

        # -- translator -------------------------------------------------
        flow.start("translator")
        flow.event("translator", "received statement")
        workspace = (
            Workspace(checkpoint.workspace_prefix)
            if checkpoint is not None
            else Workspace(f"MR{self._executions}")
        )
        program = self._translator.translate(statement_text, workspace)
        flow.event(
            "translator",
            "validated and classified",
            f"directives {program.directives}",
        )
        flow.stop()

        if checkpoint is None:
            checkpoint = StageCheckpoint(
                statement_text=key, workspace_prefix=workspace.prefix
            )

        try:
            self._check_cancel(cancel, "preprocessor")
            program, stats, reused = self._preprocess_stage(
                program, statement_text, flow, checkpoint, policy,
                resilience, resumed, on_retry,
            )
            self._check_cancel(cancel, "core")
            encoded_rules, core_stats = self._core_stage(
                program, flow, checkpoint, policy, resilience, on_retry
            )
            self._check_cancel(cancel, "postprocessor")
            decoded = self._postprocess_stage(
                program, encoded_rules, flow, checkpoint, policy,
                resilience, on_retry,
            )
        except Exception:
            # Keep the checkpoint: a later run(resume=True) of the same
            # statement picks up right after the last completed stage.
            self._remember_checkpoint(key, checkpoint)
            raise
        self._checkpoints.pop(key, None)

        if schedule is not None and fault_mark is not None:
            errors, latencies, degradations = schedule.snapshot()
            resilience.faults_injected += errors - fault_mark[0]
            resilience.latencies_injected += latencies - fault_mark[1]
            resilience.degraded.extend(
                schedule.degradations[fault_mark[2]:]
            )
        flow.bump("faults", resilience.faults_injected)
        flow.bump("latency_faults", resilience.latencies_injected)
        flow.bump("stages_resumed", resilience.stages_resumed)
        flow.bump("degradations", resilience.degradations)
        if resilience.any():
            flow.event("postprocessor", "resilience", resilience.describe())

        # Register the run as a REFRESH RULES target.  The state is
        # captured lazily by the first refresh (which then costs a full
        # pairs pass but still emits bit-identically); a re-run resets
        # it because the old snapshot no longer matches what the rule
        # tables reflect.
        self._refresh_registry[
            program.statement.output_table.lower()
        ] = _RefreshEntry(statement_text=key, program=program)

        return MiningResult(
            statement=program.statement,
            program=program,
            encoded_rules=encoded_rules,
            rules=decoded,
            preprocess_stats=stats,
            flow=flow,
            preprocessing_reused=reused,
            core_stats=core_stats,
            resilience=resilience,
            run_id=self._executions,
        )

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------

    def _preprocess_stage(
        self,
        program: TranslationProgram,
        statement_text: str,
        flow: ProcessFlow,
        checkpoint: StageCheckpoint,
        policy: RetryPolicy,
        resilience: ResilienceStats,
        resumed: bool,
        on_retry,
    ) -> Tuple[TranslationProgram, Optional[PreprocessStats], bool]:
        flow.start("preprocessor")
        stats: Optional[PreprocessStats] = None
        reused = False

        if resumed and checkpoint.preprocessing_reused:
            # The crashed run had satisfied preprocessing from the
            # Section-3 reuse cache; its encoded tables still live in
            # the shared workspace the checkpoint points at.
            self.db.variables.update(checkpoint.host_variables)
            reused = True
            flow.event(
                "preprocessor",
                "reused encoded tables",
                f"workspace {program.workspace.prefix} "
                f"(Section 3 optimisation)",
            )
            resilience.stages_resumed += 1
            if not checkpoint.stored:
                self._drop_output_tables(program)
            flow.stop()
            return program, None, True

        if resumed:
            # Partial artifacts of the crashed query (tables it started
            # but never completed) are dropped so re-running it starts
            # from a clean slate.
            self._drop_partial_tables(checkpoint, program.workspace)
            stats = self._preprocessor.run(
                program, flow, checkpoint=checkpoint, policy=policy
            )
            resilience.stages_resumed += stats.queries_skipped
            resilience.retries += stats.retries
        else:
            signature = self._preprocess_signature(program)
            cached = (
                self._preprocess_cache.get(signature)
                if self.reuse_preprocessing
                else None
            )
            if cached is not None:
                cached_workspace, totg, mingroups = cached
                # Re-target the program onto the cached workspace.
                program = self._translator.translate(
                    statement_text, cached_workspace
                )
                self.db.variables["totg"] = totg
                self.db.variables["mingroups"] = mingroups
                reused = True
                checkpoint.preprocessing_reused = True
                checkpoint.workspace_prefix = cached_workspace.prefix
                checkpoint.host_variables = {
                    "totg": totg, "mingroups": mingroups
                }
                flow.event(
                    "preprocessor",
                    "reused encoded tables",
                    f"workspace {cached_workspace.prefix} "
                    f"(Section 3 optimisation)",
                )
                # The output tables of *this* statement must be fresh.
                self._drop_output_tables(program)
            else:
                stats = self._preprocessor.run(
                    program, flow, checkpoint=checkpoint, policy=policy
                )
                resilience.retries += stats.retries
        if stats is not None and self.reuse_preprocessing:
            self._preprocess_cache[self._preprocess_signature(program)] = (
                program.workspace,
                stats.totg,
                stats.mingroups,
            )
        flow.stop()
        return program, stats, reused

    def _core_stage(
        self,
        program: TranslationProgram,
        flow: ProcessFlow,
        checkpoint: StageCheckpoint,
        policy: RetryPolicy,
        resilience: ResilienceStats,
        on_retry,
    ) -> Tuple[List[EncodedRule], Optional[CoreStats]]:
        flow.start("core")
        if checkpoint.encoded_rules is not None:
            encoded_rules = checkpoint.encoded_rules
            core_stats = checkpoint.core_stats
            resilience.stages_resumed += 1
            flow.event(
                "core",
                "skipped (resume)",
                f"{len(encoded_rules)} rules from checkpoint",
            )
        else:
            representation = self.representation
            try:
                encoded_rules, core_stats = policy.execute(
                    lambda: self._mine_once(program, flow, representation),
                    stage="core",
                    on_retry=on_retry,
                )
            except FaultError as exc:
                if representation == "set" or exc.site != "core.bitset":
                    raise
                # Graceful degradation: the bitset machinery keeps
                # failing after retries — fall back to the "set" layout
                # (identical rules, slower counting).
                representation = "set"
                resilience.degraded.append(f"core: bitset -> set ({exc})")
                flow.event(
                    "core",
                    "degraded",
                    "bitset representation failed; retrying with the "
                    "set layout",
                )
                encoded_rules, core_stats = policy.execute(
                    lambda: self._mine_once(program, flow, representation),
                    stage="core",
                    on_retry=on_retry,
                )
            checkpoint.encoded_rules = encoded_rules
            checkpoint.core_stats = core_stats
        flow.event("core", "extracted rules", f"{len(encoded_rules)} rules")
        if core_stats is not None:
            flow.event("core", "observability", core_stats.describe())
        flow.stop()
        return encoded_rules, core_stats

    def _mine_once(
        self,
        program: TranslationProgram,
        flow: ProcessFlow,
        representation: str,
    ) -> Tuple[List[EncodedRule], CoreStats]:
        faults.check("core.load")
        loader = CoreInputLoader(self.db, program.core)
        if self.workers > 1:
            if representation == "bitset" and not self._explicit_representation:
                representation = "packed"
            return self._mine_sharded(program, flow, loader, representation)
        if program.core.simple:
            data = loader.load_simple()
            if representation == "bitset":
                faults.check("core.bitset")
            algorithm = self.algorithm
            restore = None
            if (
                representation != "bitset"
                and getattr(algorithm, "representation", None) == "bitset"
            ):
                restore = algorithm.representation
                algorithm.representation = "set"
            try:
                operator = SimpleCoreOperator(algorithm)
                flow.event(
                    "core",
                    "simple core processing",
                    f"algorithm {algorithm.name}, "
                    f"{len(data.groups)} encoded groups",
                )
                encoded_rules = operator.run(data, program.core)
                core_stats = CoreStats.from_simple(algorithm)
            finally:
                if restore is not None:
                    algorithm.representation = restore
            return encoded_rules, core_stats

        general_data = loader.load_general()
        if representation == "bitset":
            faults.check("core.bitset")
        general = GeneralCoreOperator(representation=representation)
        flow.event(
            "core",
            "general core processing",
            "elementary rules from InputRules"
            if general_data.elementary is not None
            else "elementary rules derived from CodedSource",
        )
        encoded_rules = general.run(general_data, program.core)
        return encoded_rules, CoreStats.from_general(general)

    def _mine_sharded(
        self,
        program: TranslationProgram,
        flow: ProcessFlow,
        loader: CoreInputLoader,
        representation: str,
    ) -> Tuple[List[EncodedRule], CoreStats]:
        """The workers>1 core stage: gid-range sharded local mining,
        exact recount, merge (:mod:`repro.parallel`).  Bit-identical
        output to the serial path by construction."""
        if representation != "set":
            faults.check("core.bitset")
        miner = ShardedMiner(
            workers=self.workers,
            shards=self.shards,
            start_method=self.shard_start_method,
            tracer=self.tracer,
            metrics=self.metrics,
            explicit_representation=self._explicit_representation,
        )
        if program.core.simple:
            # Columnar CodedSource tables stream their raw identifier
            # columns into the worker bundle instead of per-shard
            # dicts built in the parent (cuts spawn-mode pickling).
            streamed = loader.load_simple_columns()
            if streamed is not None:
                data, columns = streamed
                ngroups = len(set(columns[0]))
            else:
                data = loader.load_simple()
                columns = None
                ngroups = len(data.groups)
            algorithm = self.algorithm
            restore = None
            if (
                hasattr(algorithm, "representation")
                and algorithm.representation != representation
            ):
                restore = algorithm.representation
                algorithm.representation = representation
            try:
                flow.event(
                    "core",
                    "sharded simple core processing",
                    f"algorithm {algorithm.name}, "
                    f"{ngroups} encoded groups, "
                    f"{miner.shards} shards x {self.workers} workers"
                    + (
                        f" ({self.shard_start_method})"
                        if self.shard_start_method
                        else ""
                    )
                    + (
                        ", shard inputs streamed from columnar columns"
                        if columns is not None
                        else ""
                    ),
                )
                encoded_rules, core_stats = miner.mine_simple(
                    data, program.core, algorithm, columns=columns
                )
            finally:
                if restore is not None:
                    algorithm.representation = restore
        else:
            general_data = loader.load_general()
            flow.event(
                "core",
                "sharded general core processing",
                f"{miner.shards} shards x {self.workers} workers, "
                + (
                    "elementary rules from InputRules"
                    if general_data.elementary is not None
                    else "elementary rules derived from CodedSource"
                ),
            )
            encoded_rules, core_stats = miner.mine_general(
                general_data, program.core, representation
            )
        if miner.degraded:
            flow.event("core", "degraded", miner.degraded)
        return encoded_rules, core_stats

    def _postprocess_stage(
        self,
        program: TranslationProgram,
        encoded_rules: List[EncodedRule],
        flow: ProcessFlow,
        checkpoint: StageCheckpoint,
        policy: RetryPolicy,
        resilience: ResilienceStats,
        on_retry,
    ) -> List[DecodedRule]:
        out = program.statement.output_table
        flow.start("postprocessor")
        if checkpoint.stored and self.db.catalog.has_table(out):
            resilience.stages_resumed += 1
            flow.event("postprocessor", "skipped store (resume)", out)
        else:
            policy.execute(
                lambda: self._postprocessor.store_encoded_rules(
                    program, encoded_rules
                ),
                stage="postprocessor.store",
                on_retry=on_retry,
            )
            checkpoint.stored = True
            # The stored tables join the checkpoint snapshot so a
            # later resume neither sweeps them away as partial
            # artifacts nor trusts them if they changed underneath.
            for table in (program.workspace.output_bodies,
                          program.workspace.output_heads):
                if self.db.catalog.has_table(table):
                    checkpoint.table_snapshot[table] = len(
                        self.db.catalog.get_table(table)
                    )
        if checkpoint.decoded and self.db.catalog.has_table(f"{out}_Display"):
            resilience.stages_resumed += 1
            flow.event(
                "postprocessor", "skipped decode (resume)", f"{out}_Display"
            )
        else:
            policy.execute(
                lambda: self._postprocessor.decode(program),
                stage="postprocessor.decode",
                on_retry=on_retry,
            )
            checkpoint.decoded = True
        decoded = policy.execute(
            lambda: self._postprocessor.decoded_rules(
                program, encoded_rules
            ),
            stage="postprocessor.decode",
            on_retry=on_retry,
        )
        flow.event(
            "postprocessor",
            "stored output relations",
            f"{out}, {out}_Bodies, {out}_Heads",
        )
        flow.stop()
        return decoded

    # ------------------------------------------------------------------
    # REFRESH RULES (FUP-style incremental maintenance)
    # ------------------------------------------------------------------

    def refresh(
        self,
        target: str,
        resume: bool = False,
        retry: Optional[RetryPolicy] = None,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> RefreshResult:
        """Bring a previously mined rule table up to date with rows
        appended to its source (``REFRESH RULES <output_table>``).

        *target* is either the bare output table name or the full
        ``REFRESH RULES <name>`` statement text.  The refreshed output
        tables are bit-identical to a from-scratch run of the owning
        statement on the current source.  When the statement is not
        eligible for delta maintenance, when no state has been captured
        yet the work degrades gracefully (state capture / forced full
        re-mine — see :mod:`repro.incremental`); when the source was
        mutated in place (not append-only) a full re-mine is forced.
        """
        policy = retry if retry is not None else self.retry_policy
        if policy is None:
            policy = RetryPolicy.single()
        text = target.strip()
        # Statement text, not a bare table name whose identifier merely
        # starts with "refresh": the keyword is a whole first word.
        first_word = text.split(None, 1)[0].upper() if text else ""
        if first_word == "REFRESH":
            name = parse_refresh(text).output_table
        else:
            name = text

        tracer = self.tracer
        metrics = self.metrics
        health = self.health
        if health is not None:
            health.begin()
        status = "error"
        mode = "unknown"
        error_text: Optional[str] = None
        result: Optional[RefreshResult] = None
        started = time.perf_counter()
        with obs_context.ensure() as ctx:
            cpu_start = obs_profile.cpu_seconds()
            mem_start = obs_profile.memory_sample()
            try:
                if tracer.enabled:
                    with tracer.span(
                        "minerule.refresh", category="minerule", output=name
                    ):
                        result = self._refresh_pipeline(
                            name, resume, policy, cancel
                        )
                else:
                    result = self._refresh_pipeline(
                        name, resume, policy, cancel
                    )
                ctx.run_id = result.run_id
                status = "ok"
                mode = result.stats.mode
            except RunCancelled as exc:
                status = "cancelled"
                error_text = str(exc)
                if health is not None:
                    health.success()
                raise
            except Exception as exc:
                error_text = f"{type(exc).__name__}: {exc}"
                if health is not None:
                    health.failure(exc)
                raise
            finally:
                elapsed = time.perf_counter() - started
                if metrics.enabled:
                    metrics.histogram(
                        "repro_refresh_seconds",
                        "End-to-end REFRESH RULES latency",
                    ).observe(elapsed)
                    metrics.counter(
                        "repro_refresh_total",
                        "REFRESH RULES runs by outcome and mode",
                        ("status", "mode"),
                    ).inc(status=status, mode=mode)
                if self.slowlog is not None:
                    self.slowlog.record(
                        "minerule.refresh",
                        elapsed,
                        detail=f"REFRESH RULES {name}",
                    )
                if self.runlog is not None:
                    self._record_run(
                        ctx,
                        kind="refresh",
                        statement=f"REFRESH RULES {name}",
                        status=status,
                        error=error_text,
                        elapsed=elapsed,
                        cpu_seconds=obs_profile.cpu_seconds() - cpu_start,
                        peak_bytes=obs_profile.peak_bytes_since(mem_start),
                        rules=None if result is None else len(result.rules),
                        stages=(
                            None if result is None else result.flow.timings
                        ),
                        mode=mode,
                    )
        if health is not None:
            health.success()
        return result

    def _refresh_pipeline(
        self,
        name: str,
        resume: bool,
        policy: RetryPolicy,
        cancel: Optional[Callable[[], bool]],
    ) -> RefreshResult:
        # Same serialization as a full run: refresh rewrites Bset and
        # the output tables, so it owns the engine exclusively.
        with self._run_lock, self.db.rwlock.write_locked():
            return self._refresh_locked(name, resume, policy, cancel)

    def _refresh_locked(
        self,
        name: str,
        resume: bool,
        policy: RetryPolicy,
        cancel: Optional[Callable[[], bool]],
    ) -> RefreshResult:
        entry = self._refresh_registry.get(name.lower())
        if entry is None:
            raise RefreshError(
                f"no MINE RULE run recorded for output table {name!r}; "
                f"run the statement once before REFRESH RULES"
            )
        flow = ProcessFlow(tracer=self.tracer)
        resilience = ResilienceStats()
        reason = refresh_eligibility(entry.program)
        if reason is not None:
            return self._refresh_full(
                entry, reason, flow, resume, policy, cancel
            )

        def on_retry(stage: str, attempt: int, exc: Exception,
                     delay: float) -> None:
            resilience.retries += 1
            flow.bump("retries")
            flow.event(
                "core",
                "retry",
                f"{stage} attempt {attempt} failed ({exc}); "
                f"backing off {delay * 1000:.1f} ms",
            )

        computation = RefreshComputation(
            self.db, entry.program.statement, entry.state
        )

        def phase(site: str, fn):
            def attempt():
                faults.check(site)
                return fn()

            if self.tracer.enabled:
                with self.tracer.span(site, category="refresh"):
                    return policy.execute(attempt, stage=site,
                                          on_retry=on_retry)
            return policy.execute(attempt, stage=site, on_retry=on_retry)

        self._check_cancel(cancel, "refresh.delta")
        flow.start("core")
        flow.event(
            "core",
            "refresh delta",
            "capturing mining state from the source"
            if entry.state is None
            else f"diffing source against {entry.state.row_count}-row "
                 f"snapshot",
        )
        try:
            # delta() is idempotent (pure computation into local
            # buffers), so an injected fault at the site simply re-runs
            # the whole phase on retry
            phase("refresh.delta", computation.delta)
        except SourceMutated as exc:
            flow.stop()
            return self._refresh_full(
                entry, str(exc), flow, resume, policy, cancel
            )
        stats = computation.stats
        flow.event(
            "core",
            "delta applied",
            f"{stats.delta_rows} rows, {stats.delta_pairs} new pairs, "
            f"{stats.new_items} new items, {stats.new_groups} new groups, "
            f"{stats.known_itemsets} known counts delta-adjusted",
        )
        self._check_cancel(cancel, "refresh.recount")
        state = phase("refresh.recount", computation.recount)
        flow.event(
            "core",
            "refresh recount",
            f"{stats.frequent_itemsets} frequent + "
            f"{stats.border_itemsets} border itemsets "
            f"({stats.recounted_itemsets} full-bitmap recounts)",
        )
        flow.stop()
        # Commit the state before emission: a crash while emitting
        # leaves a committed state whose re-refresh sees an empty delta
        # and re-emits identical tables.
        entry.state = state

        self._check_cancel(cancel, "postprocessor")
        decoded, encoded_rules = self._refresh_emit(
            entry, state, flow, policy, on_retry
        )
        stats.rules = len(encoded_rules)
        if self.tracer.enabled:
            self.tracer.instant(
                "refresh.stats", category="refresh", **stats.as_args()
            )
        # The reuse cache's encoded tables predate the append; drop the
        # cache (not the tables — the refreshed Bset lives among them)
        # so a later full run re-preprocesses against current data.
        self.invalidate_preprocessing()
        self._executions += 1
        return RefreshResult(
            statement=entry.program.statement,
            program=entry.program,
            encoded_rules=encoded_rules,
            rules=decoded,
            flow=flow,
            stats=stats,
            resilience=resilience,
            run_id=self._executions,
        )

    def _refresh_emit(
        self,
        entry: _RefreshEntry,
        state: MiningState,
        flow: ProcessFlow,
        policy: RetryPolicy,
        on_retry,
    ) -> Tuple[List[DecodedRule], List[EncodedRule]]:
        """Rebuild Bset from the refreshed state and emit through the
        serial postprocessor — the exact store/decode path of a full
        run, so outputs are bit-identical by construction."""
        program = entry.program
        names = program.workspace
        bset_rows, counts_by_bid = encode_for_emission(state)
        columns = program.schemas.get(names.bset)
        types = None
        if self.db.catalog.has_table(names.bset):
            table = self.db.catalog.get_table(names.bset)
            if columns is None:
                columns = list(table.columns)
            types = list(table.types)
        self.db.create_table_from_rows(
            names.bset, columns, bset_rows, types=types, replace=True
        )
        encoded_rules = build_rules(counts_by_bid, state.totg, program.core)
        flow.start("postprocessor")
        policy.execute(
            lambda: self._postprocessor.store_encoded_rules(
                program, encoded_rules
            ),
            stage="postprocessor.store",
            on_retry=on_retry,
        )
        policy.execute(
            lambda: self._postprocessor.decode(program),
            stage="postprocessor.decode",
            on_retry=on_retry,
        )
        decoded = policy.execute(
            lambda: self._postprocessor.decoded_rules(program, encoded_rules),
            stage="postprocessor.decode",
            on_retry=on_retry,
        )
        out = program.statement.output_table
        flow.event(
            "postprocessor",
            "stored refreshed relations",
            f"{out}, {out}_Bodies, {out}_Heads ({len(encoded_rules)} rules)",
        )
        flow.stop()
        return decoded, encoded_rules

    def _refresh_full(
        self,
        entry: _RefreshEntry,
        reason: str,
        flow: ProcessFlow,
        resume: bool,
        policy: RetryPolicy,
        cancel: Optional[Callable[[], bool]],
    ) -> RefreshResult:
        """Forced full re-mine of the recorded statement (ineligible
        statement or mutated source); re-registers and re-captures."""
        flow.event("core", "forced full re-mine", reason)
        if self.tracer.enabled:
            self.tracer.instant(
                "refresh.full", category="refresh", reason=reason
            )
        self.invalidate_preprocessing()
        result = self._run_pipeline_locked(
            entry.statement_text, resume, policy, cancel
        )
        stats = RefreshStats(mode="full", reason=reason,
                             rules=len(result.rules))
        return RefreshResult(
            statement=result.statement,
            program=result.program,
            encoded_rules=result.encoded_rules,
            rules=result.rules,
            flow=result.flow,
            stats=stats,
            resilience=result.resilience,
            run_id=result.run_id,
        )

    def _publish_observations(self, result: MiningResult) -> None:
        """Push end-of-run statistics into the tracer registry and the
        metrics registry so the trace export, the consolidated report
        and a monitoring scrape see one snapshot.

        Gauges are labeled with the run id — without the label,
        repeated runs in one session silently overwrite each other's
        values (last-writer-wins) and the trace export lies about every
        run but the final one.
        """
        tracer = self.tracer
        metrics = self.metrics
        run = result.run_id
        cache = self.db.cache_stats

        def pub(name: str, value: Any) -> None:
            publish_gauge(tracer, metrics, name, value, run=run)

        pub("engine.statements_executed", self.db.statements_executed)
        pub("engine.statement_cache_hits", cache.statement_hits)
        pub("engine.statement_cache_misses", cache.statement_misses)
        pub("engine.plan_cache_hits", cache.plan_hits)
        pub("engine.plan_cache_misses", cache.plan_misses)
        pub("rules.decoded", len(result.rules))
        stats = result.preprocess_stats
        if stats is not None:
            pub("preprocessor.totg", stats.totg)
            pub("preprocessor.mingroups", stats.mingroups)
        core = result.core_stats
        if core is not None:
            core.publish(tracer, metrics, run=run)
        # resilience counters stay local to the ProcessFlow during the
        # run; forward them exactly once here (the tracer mirrors them
        # into the metrics registry)
        for counter, amount in result.flow.counters.items():
            if tracer.enabled:
                tracer.bump(counter, amount)
            else:
                metrics.trace_counter(counter, amount)
        if metrics.enabled:
            component_seconds = metrics.histogram(
                "repro_component_seconds",
                "Wall seconds per pipeline component per run",
                ("component",),
            )
            for component, seconds in result.flow.timings.items():
                component_seconds.observe(seconds, component=component)

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def _checkpoint_valid(self, checkpoint: StageCheckpoint) -> bool:
        """A checkpoint resumes only if every encoded table it recorded
        still exists with exactly the recorded row count."""
        if checkpoint.preprocessing_reused:
            return True
        for table, rows in checkpoint.table_snapshot.items():
            if not self.db.catalog.has_table(table):
                return False
            if len(self.db.catalog.get_table(table)) != rows:
                return False
        return True

    def _drop_partial_tables(
        self, checkpoint: StageCheckpoint, workspace: Workspace
    ) -> None:
        for table in workspace.all_tables():
            if table not in checkpoint.table_snapshot:
                self.db.catalog.drop_table(table, if_exists=True)

    def _sweep_workspace(self, workspace: Workspace) -> None:
        """Drop every working object of *workspace* and evict reuse
        cache entries pointing at it (orphaned-prefix cleanup)."""
        for view in workspace.all_views():
            self.db.catalog.drop_view(view, if_exists=True)
        for table in workspace.all_tables():
            self.db.catalog.drop_table(table, if_exists=True)
        for sequence in workspace.all_sequences():
            self.db.catalog.drop_sequence(sequence, if_exists=True)
        self._preprocess_cache = {
            signature: entry
            for signature, entry in self._preprocess_cache.items()
            if entry[0].prefix != workspace.prefix
        }

    def _remember_checkpoint(
        self, key: str, checkpoint: StageCheckpoint
    ) -> None:
        self._checkpoints[key] = checkpoint
        while len(self._checkpoints) > self._CHECKPOINT_CAP:
            self._checkpoints.pop(next(iter(self._checkpoints)))

    def checkpoint_for(self, statement_text: str) -> Optional[StageCheckpoint]:
        """The crash checkpoint of *statement_text*, if one exists
        (test/CLI observability)."""
        return self._checkpoints.get(" ".join(statement_text.split()))

    # ------------------------------------------------------------------

    def compute_metrics(self, result: MiningResult, store: bool = True):
        """Extended rule-quality measures (lift, leverage, conviction)
        for a just-executed result; optionally persisted as
        ``<out>_Metrics``.  Requires the result's encoded tables to
        still be in the database (i.e. call right after execute)."""
        from repro.kernel.metrics import compute_metrics, store_metrics

        metrics = compute_metrics(self.db, result.program,
                                  result.encoded_rules)
        if store:
            store_metrics(self.db, result.program, metrics)
        return metrics

    def invalidate_preprocessing(self, drop_tables: bool = False) -> None:
        """Drop the preprocessing-reuse cache (call after updating the
        source tables).  With ``drop_tables`` the cached encoded tables
        are also removed from the database, bounding memory across
        long sessions."""
        if drop_tables:
            for workspace, _, _ in self._preprocess_cache.values():
                for view in workspace.all_views():
                    self.db.catalog.drop_view(view, if_exists=True)
                for table in workspace.all_tables():
                    self.db.catalog.drop_table(table, if_exists=True)
                for sequence in workspace.all_sequences():
                    self.db.catalog.drop_sequence(sequence, if_exists=True)
        self._preprocess_cache.clear()
        self._checkpoints.clear()

    def _preprocess_signature(self, program: TranslationProgram) -> tuple:
        """Statements share encoded tables iff this signature matches:
        all parts that affect queries Q0..Q11 (including the support
        threshold, which parameterizes the Bset/Hset encoding)."""
        statement = program.statement

        def render(expr) -> str:
            return "" if expr is None else render_expr(expr)

        return (
            tuple((t.name.lower(), t.alias) for t in statement.from_list),
            render(statement.source_condition),
            tuple(a.lower() for a in statement.group_attributes),
            render(statement.group_condition),
            tuple(a.lower() for a in statement.cluster_attributes),
            render(statement.cluster_condition),
            tuple(a.lower() for a in statement.body.attributes),
            tuple(a.lower() for a in statement.head.attributes),
            render(statement.mining_condition),
            statement.min_support,
            program.directives.as_tuple(),
        )

    def _drop_output_tables(self, program: TranslationProgram) -> None:
        out = program.statement.output_table
        names = program.workspace
        for table in (
            out,
            f"{out}_Bodies",
            f"{out}_Heads",
            f"{out}_Display",
            names.output_bodies,
            names.output_heads,
        ):
            self.db.catalog.drop_table(table, if_exists=True)
